#include "sched/policy.hpp"

#include <algorithm>

namespace actyp::sched {
namespace {

// The linear scan shared by the ordered policies, templated on the
// concrete (final) policy type so the per-entry Better comparison
// inlines instead of going through the vtable ~n times per query.
template <typename Policy>
Selection LinearSelect(const Policy& policy,
                       const std::vector<CacheEntry>& cache,
                       const SelectionContext& ctx) {
  Selection result;
  if (cache.empty()) return result;

  const std::uint32_t stride = std::max<std::uint32_t>(1, ctx.instance_count);
  const auto* filter = ctx.filter;
  auto consider = [&](std::size_t i) {
    ++result.examined;
    if (!SchedulingPolicy::Eligible(cache[i])) return;
    if (filter && !(*filter)(i, cache[i])) return;
    if (!result.found() || policy.Better(cache[i], cache[result.index])) {
      result.index = i;
    }
  };

  // Preferred stride first: indices congruent to this instance number.
  for (std::size_t i = ctx.instance % stride; i < cache.size(); i += stride) {
    consider(i);
  }
  if (result.found() || stride == 1) return result;

  // Fall back to the machines preferred by sibling instances.
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (i % stride == ctx.instance % stride) continue;
    consider(i);
  }
  return result;
}

}  // namespace

Selection SchedulingPolicy::Select(const std::vector<CacheEntry>& cache,
                                   const SelectionContext& ctx) const {
  return LinearSelect(*this, cache, ctx);
}

bool LeastLoadPolicy::Better(const CacheEntry& a, const CacheEntry& b) const {
  if (a.load != b.load) return a.load < b.load;
  return a.effective_speed > b.effective_speed;
}

Selection LeastLoadPolicy::Select(const std::vector<CacheEntry>& cache,
                                  const SelectionContext& ctx) const {
  return LinearSelect(*this, cache, ctx);
}

bool MostMemoryPolicy::Better(const CacheEntry& a, const CacheEntry& b) const {
  if (a.available_memory_mb != b.available_memory_mb) {
    return a.available_memory_mb > b.available_memory_mb;
  }
  return a.load < b.load;
}

Selection MostMemoryPolicy::Select(const std::vector<CacheEntry>& cache,
                                   const SelectionContext& ctx) const {
  return LinearSelect(*this, cache, ctx);
}

bool FastestPolicy::Better(const CacheEntry& a, const CacheEntry& b) const {
  // Speed discounted by current load per cpu: what matters is the speed
  // the new job will actually see.
  const double ea = a.effective_speed /
                    (1.0 + a.load / static_cast<double>(a.num_cpus));
  const double eb = b.effective_speed /
                    (1.0 + b.load / static_cast<double>(b.num_cpus));
  if (ea != eb) return ea > eb;
  return a.load < b.load;
}

Selection FastestPolicy::Select(const std::vector<CacheEntry>& cache,
                                const SelectionContext& ctx) const {
  return LinearSelect(*this, cache, ctx);
}

bool RoundRobinPolicy::Better(const CacheEntry& a, const CacheEntry& b) const {
  // Sorting is a no-op for round-robin; keep stable order.
  (void)a;
  (void)b;
  return false;
}

Selection RoundRobinPolicy::Select(const std::vector<CacheEntry>& cache,
                                   const SelectionContext& ctx) const {
  Selection result;
  const std::size_t n = cache.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (cursor_ + step) % n;
    ++result.examined;
    if (Eligible(cache[i]) && (!ctx.filter || (*ctx.filter)(i, cache[i]))) {
      result.index = i;
      cursor_ = (i + 1) % n;
      return result;
    }
  }
  return result;
}

bool RandomPolicy::Better(const CacheEntry& a, const CacheEntry& b) const {
  (void)a;
  (void)b;
  return false;
}

Selection RandomPolicy::Select(const std::vector<CacheEntry>& cache,
                               const SelectionContext& ctx) const {
  Selection result;
  const std::size_t n = cache.size();
  if (n == 0 || ctx.rng == nullptr) return result;
  // Random probing up to n attempts, then linear sweep; examined counts
  // reflect actual probes so the cost model stays honest.
  auto passes = [&](std::size_t i) {
    return Eligible(cache[i]) && (!ctx.filter || (*ctx.filter)(i, cache[i]));
  };
  for (std::size_t attempt = 0; attempt < n; ++attempt) {
    const std::size_t i = ctx.rng->NextBounded(n);
    ++result.examined;
    if (passes(i)) {
      result.index = i;
      return result;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    ++result.examined;
    if (passes(i)) {
      result.index = i;
      return result;
    }
  }
  return result;
}

Result<std::unique_ptr<SchedulingPolicy>> MakePolicy(const std::string& name) {
  // The bare names are the indexed fast paths; the "linear-" prefix
  // keeps the paper's O(n) scan + periodic sort behaviour.
  const bool linear = name.rfind("linear-", 0) == 0;
  const std::string base = linear ? name.substr(7) : name;
  if (base == "least-load" || base.empty()) {
    return std::unique_ptr<SchedulingPolicy>(new LeastLoadPolicy(!linear));
  }
  if (base == "most-memory") {
    return std::unique_ptr<SchedulingPolicy>(new MostMemoryPolicy(!linear));
  }
  if (base == "fastest") {
    return std::unique_ptr<SchedulingPolicy>(new FastestPolicy(!linear));
  }
  if (!linear && base == "round-robin") {
    return std::unique_ptr<SchedulingPolicy>(new RoundRobinPolicy());
  }
  if (!linear && base == "random") {
    return std::unique_ptr<SchedulingPolicy>(new RandomPolicy());
  }
  return InvalidArgument("unknown scheduling policy '" + name + "'");
}

}  // namespace actyp::sched
