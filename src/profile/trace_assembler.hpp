// TraceAssembler: joins the profiler's SpanRecords on request_id into
// per-request waterfalls — one RequestTrace per request, its spans in
// time order across every hop the request took (retries, delegation,
// fragment fan-out, the reply) — and attributes each trace's critical
// path to the stage that consumed the most of it. Background spans
// (replica anti-entropy pulls, monitor sweeps; see BackgroundId) are
// split out to their own list instead of joining any request.
//
// On top of the assembled traces:
//   - TailReport digests the slowest fraction of traces per cell
//     (which stage dominates slow requests, and each stage's share of
//     the tail's attributed time) — the slow_trace_top_stage /
//     <stage>_tail_share scenario metrics.
//   - TraceSink collects span snapshots from concurrently-running
//     sweep cells and hands them back in a deterministic order, so
//     --trace-out output is byte-identical whatever --jobs was.
//   - WriteChromeTrace emits the N slowest and N exemplar requests per
//     cell (plus all background spans) as Chrome trace-event JSON,
//     loadable in Perfetto / chrome://tracing. Timestamps are sim-time
//     microseconds verbatim, so the waterfall reads in sim time.
//
// Everything here is a pure function of the span set, with all ties
// broken on request_id / span content: fixed-seed runs produce
// byte-identical trace files.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "profile/stage_profiler.hpp"

namespace actyp::profile {

// One request's assembled waterfall.
struct RequestTrace {
  std::uint64_t request_id = 0;
  // Time-ordered: (t_enter, t_exit, stage) ascending.
  std::vector<SpanRecord> spans;
  SimTime start = 0;  // earliest t_enter
  SimTime end = 0;    // latest t_exit
  double duration_s = 0;
  // Summed span time per stage. kClientIssue is the client-observed
  // umbrella span covering the whole interaction, so attribution runs
  // over the other stages only.
  std::array<SimDuration, kStageCount> stage_total{};
  // Critical-path attribution: the non-umbrella stage with the largest
  // summed time (ties to the earlier pipeline stage), and its share of
  // all attributed time. kClientIssue with share 0 when the trace has
  // only the umbrella span to go on.
  Stage top_stage = Stage::kClientIssue;
  double top_share = 0;
};

struct AssembledTraces {
  std::vector<RequestTrace> requests;  // sorted by request_id
  // Background spans (IsBackgroundId), sorted by
  // (t_enter, t_exit, request_id).
  std::vector<SpanRecord> background;
};

// Digest of the slowest `slow_fraction` of traces.
struct TailReport {
  std::uint64_t trace_count = 0;  // assembled request traces
  std::uint64_t slow_count = 0;   // traces in the tail window
  // Index into Stage of the most frequent top_stage among slow traces
  // (ties to the earlier stage); -1 when there are no traces.
  int slow_top_stage = -1;
  // Stage s's share of all attributed (non-umbrella) stage time across
  // the slow traces. Sums to 1 when the tail has any attributed time.
  std::array<double, kStageCount> tail_share{};
};

class TraceAssembler {
 public:
  // Joins one cell's span snapshot (e.g. StageProfiler::RingSnapshot)
  // into request traces plus the background span list.
  [[nodiscard]] static AssembledTraces Assemble(
      const std::vector<SpanRecord>& spans);

  // Tail digest over the slowest ceil(slow_fraction * n) traces
  // (at least one when any trace exists); slowness ranks by
  // (duration desc, request_id asc).
  [[nodiscard]] static TailReport Tail(
      const std::vector<RequestTrace>& traces, double slow_fraction = 0.05);
};

// One sweep cell's span capture, keyed by the cell's seed.
struct TraceCell {
  std::uint64_t seed = 0;
  std::vector<SpanRecord> spans;
};

// Collects per-cell span snapshots from sweep cells that may run on
// ThreadPool workers in any order, and returns them deterministically:
// Take() sorts by (seed, span content), so two cells that happen to
// share a seed still order the same way every run.
class TraceSink {
 public:
  void Add(std::uint64_t seed, std::vector<SpanRecord> spans);

  [[nodiscard]] std::size_t size() const;

  // Drains the sink in deterministic order.
  [[nodiscard]] std::vector<TraceCell> Take();

 private:
  mutable std::mutex mu_;
  std::vector<TraceCell> cells_;
};

// --trace-filter: restricts which request traces --trace-out keeps.
// Every set criterion must hold: an exact request id, a stage the
// trace must contain, and a minimum end-to-end duration. When any
// criterion is set, background spans are dropped unless `stage` names
// their stage — a filtered file shows exactly what was asked for.
struct TraceFilter {
  std::optional<std::uint64_t> request_id;
  std::optional<Stage> stage;
  double min_duration_s = 0;

  [[nodiscard]] bool active() const {
    return request_id.has_value() || stage.has_value() ||
           min_duration_s > 0;
  }

  // Parses a comma-separated spec of "request=<id>", "stage=<name>"
  // (snake_case StageName), and "min-dur=<seconds>" terms, any subset.
  // Returns nullopt and sets *error on a malformed spec.
  [[nodiscard]] static std::optional<TraceFilter> Parse(
      const std::string& text, std::string* error);
};

// Applies the filter to every cell: each cell's spans are assembled,
// traces failing the filter are dropped, and the cell keeps only the
// surviving traces' spans (plus background spans matching a stage
// criterion). An inactive filter passes everything through untouched.
[[nodiscard]] std::vector<TraceCell> FilterTraceCells(
    std::vector<TraceCell> cells, const TraceFilter& filter);

struct ChromeTraceOptions {
  std::size_t slow_n = 5;      // slowest request traces per cell
  std::size_t exemplar_n = 5;  // nearest-to-median traces per cell
};

// Emits Chrome trace-event JSON ({"traceEvents":[...]}) for the
// selected request traces of every cell plus all background spans.
// Each cell is a trace process; each selected request and each
// background lane (replica / monitor instance) is a named thread.
void WriteChromeTrace(const std::vector<TraceCell>& cells,
                      const ChromeTraceOptions& options, std::ostream& out);

// WriteChromeTrace to `path`, replacing any existing file.
[[nodiscard]] Status WriteChromeTraceFile(const std::vector<TraceCell>& cells,
                                          const ChromeTraceOptions& options,
                                          const std::string& path);

}  // namespace actyp::profile
