// StageProfiler: low-overhead per-stage latency capture for the
// client -> QM -> PM -> pool -> reply pipeline. Each instrumented hop
// records one span {request_id, stage, t_enter, t_exit} into a
// fixed-size ring buffer (recent-history debugging) and folds its
// duration into a streaming geometric-bucket histogram per stage, from
// which the scenario reports derive p50/p95/p99.
//
// All stamps are simulated time: t_enter is the envelope's sent_at (so
// a span covers transport latency + queue wait + service time) and
// t_exit is Now() plus the service time the handler consumed. Under a
// fixed seed the percentiles are therefore deterministic and can be
// tracked by the bench baseline like any other simulated metric.
//
// Switching off: at runtime, leave the profiler pointer in a stage
// config null (SimScenario does this for ScenarioConfig::profile =
// false) — the hooks reduce to one pointer test and the report output
// is byte-identical to the unprofiled seed path. At compile time,
// configure with -DACTYP_PROFILE=OFF to define ACTYP_PROFILE_OFF and
// compile Record() away entirely.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace actyp::profile {

// Pipeline hops instrumented by the scenario substrate, in pipeline
// order. kClientIssue is the client-observed end-to-end span (first
// send of the request to the accepted allocation); kReply is the last
// hop back (pool/reintegrator send to client receipt); the middle four
// are per-stage handling spans. The last two are background services
// outside the request pipeline: one span per replica anti-entropy pull
// and per monitor refresh sweep, stamped with BackgroundId() request
// ids so trace assembly can keep them off the request waterfalls.
enum class Stage : std::uint8_t {
  kClientIssue = 0,  // client first send -> accepted allocation arrives
  kQmAdmit,          // query arrives at QM queue -> fragments routed
  kPmDelegate,       // fragment at PM queue -> split/forward/delegate done
  kPoolSelect,       // query at pool queue -> machine selected, reply sent
  kReintegrate,      // fragment result at reintegrator -> folded/forwarded
  kReply,            // allocation sent -> client receives it
  kReplicaSync,      // one anti-entropy pull (delta or full-state)
  kMonitorSweep,     // one monitor refresh sweep over due machines
};

inline constexpr std::size_t kStageCount = 8;

// Background spans (replica sync, monitor sweeps) are not tied to any
// client request; their request_id carries this tag bit plus the stage
// and an instance number, so they never collide with real request ids
// (client_id << 32 | seq keeps bit 63 clear) and trace assembly can
// route them to their own tracks instead of joining them into request
// waterfalls.
inline constexpr std::uint64_t kBackgroundIdBit = 1ull << 63;

[[nodiscard]] constexpr std::uint64_t BackgroundId(Stage stage,
                                                   std::uint64_t instance) {
  return kBackgroundIdBit |
         (static_cast<std::uint64_t>(stage) << 56) | instance;
}

[[nodiscard]] constexpr bool IsBackgroundId(std::uint64_t request_id) {
  return (request_id & kBackgroundIdBit) != 0;
}

// Instance number back out of a BackgroundId (for track labeling).
[[nodiscard]] constexpr std::uint64_t BackgroundInstance(
    std::uint64_t request_id) {
  return request_id & ((1ull << 56) - 1);
}

// Stable snake_case stage names used as metric-name prefixes in the
// scenario reports (e.g. "pool_select_p95_s") and exporter output.
[[nodiscard]] std::string_view StageName(Stage stage);

// Reverse of StageName (for --trace-filter); nullopt on unknown names.
[[nodiscard]] std::optional<Stage> StageFromName(std::string_view name);

// One captured span. 16 bytes of payload plus the stage tag; the ring
// keeps the most recent `ring_capacity` of these across all stages.
struct SpanRecord {
  std::uint64_t request_id = 0;
  Stage stage = Stage::kClientIssue;
  SimTime t_enter = 0;
  SimTime t_exit = 0;
};

// Streaming latency histogram with geometric buckets: fixed memory,
// O(1) insert, exact count/sum/min/max, quantiles by linear
// interpolation within the hit bucket (clamped to the observed range,
// so a degenerate single-value distribution reports that value
// exactly). Histograms with the same geometry merge losslessly —
// merging per-cell histograms equals one histogram over the combined
// samples, which is what lets sweep cells aggregate.
class LatencyHistogram {
 public:
  struct Geometry {
    double min_value = 1e-6;  // lower edge of the first geometric bucket
    double max_value = 1e3;   // values at/above this land in overflow
    std::size_t buckets_per_decade = 16;  // ~15% relative bucket width
  };

  LatencyHistogram();  // default geometry
  explicit LatencyHistogram(const Geometry& geometry);

  void Add(double value);
  void Reset();
  // Folds `other` in; both histograms must share one geometry.
  void Merge(const LatencyHistogram& other);

  [[nodiscard]] double Quantile(double q) const;  // 0 when empty
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] const Geometry& geometry() const { return geometry_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  [[nodiscard]] std::size_t BucketIndex(double value) const;
  // Value range covered by bucket `index` (underflow starts at 0,
  // overflow is clamped to the observed max).
  [[nodiscard]] double BucketLo(std::size_t index) const;
  [[nodiscard]] double BucketHi(std::size_t index) const;

  Geometry geometry_;
  double log_scale_ = 0;  // buckets_per_decade / ln(10)
  std::vector<std::uint64_t> buckets_;  // [underflow, geometric..., overflow]
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// How the profiler keeps raw span durations for quantile estimation.
// kRing reports quantiles straight from the streaming histograms (the
// default; the span ring is a recent-history debugging aid). kReservoir
// additionally keeps an Algorithm-R uniform sample of durations per
// stage and derives p50/p95/p99 from its order statistics — on
// mega-scale runs where the ring holds only the most recent spans, the
// reservoir stays representative of the whole measurement window.
// Reservoir draws come from a private fixed-seed generator owned by
// the profiler, never from simulation streams, so flipping the mode
// cannot perturb a run.
enum class SamplingMode : std::uint8_t {
  kRing = 0,
  kReservoir,
};

// Parses "ring" / "reservoir" (the --profile-sampling values).
[[nodiscard]] std::optional<SamplingMode> SamplingModeFromName(
    std::string_view name);
[[nodiscard]] std::string_view SamplingModeName(SamplingMode mode);

// Per-stage digest the reports consume.
struct StageSummary {
  std::uint64_t count = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
  double max_s = 0;
};

class StageProfiler {
 public:
  struct Config {
    std::size_t ring_capacity = 4096;
    LatencyHistogram::Geometry geometry;
    SamplingMode sampling = SamplingMode::kRing;
    // Durations retained per stage in reservoir mode.
    std::size_t reservoir_capacity = 1024;
  };

  StageProfiler();  // default config
  explicit StageProfiler(const Config& config);

  // Records one completed span. Spans with t_exit < t_enter (a stale or
  // mis-stamped envelope) are dropped rather than folded in as garbage.
#if defined(ACTYP_PROFILE_OFF)
  void Record(Stage /*stage*/, std::uint64_t /*request_id*/,
              SimTime /*t_enter*/, SimTime /*t_exit*/) {}
#else
  void Record(Stage stage, std::uint64_t request_id, SimTime t_enter,
              SimTime t_exit);
#endif

  // Clears histograms and ring (Measure() calls this after warmup, in
  // step with the response collector).
  void Reset();

  // Folds another profiler's histograms in (ring contents are not
  // merged — the ring is a per-simulation debugging aid, the histograms
  // are the aggregatable signal).
  void Merge(const StageProfiler& other);

  // Appends another profiler's retained spans (oldest first) into this
  // ring; histograms are untouched (pair with Merge for the full fold).
  // The LP-parallel scenarios drain per-site profilers in site-rank
  // order into a merged profiler whose ring capacity is sites x the
  // per-site capacity, so the union is lossless and trace assembly
  // sees the same span set at any worker count.
  void AbsorbRing(const StageProfiler& other);

  [[nodiscard]] StageSummary Summary(Stage stage) const;
  [[nodiscard]] const LatencyHistogram& histogram(Stage stage) const;

  [[nodiscard]] SamplingMode sampling() const { return sampling_; }
  // The retained duration sample for `stage` (empty in ring mode).
  [[nodiscard]] const std::vector<double>& Reservoir(Stage stage) const;

  // Spans recorded since the last Reset (including any the ring has
  // since overwritten).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::size_t ring_capacity() const { return ring_capacity_; }
  // The retained spans, oldest first.
  [[nodiscard]] std::vector<SpanRecord> RingSnapshot() const;

 private:
  // Algorithm R: keep the first `reservoir_capacity_` durations, then
  // replace a uniformly-chosen slot with decreasing probability.
  void ReservoirAdd(Stage stage, double seconds);

  std::size_t ring_capacity_;
  std::array<LatencyHistogram, kStageCount> histograms_;
  std::vector<SpanRecord> ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t recorded_ = 0;
  SamplingMode sampling_ = SamplingMode::kRing;
  std::size_t reservoir_capacity_ = 1024;
  std::array<std::vector<double>, kStageCount> reservoirs_;
  std::array<std::uint64_t, kStageCount> reservoir_seen_{};
  // Private fixed-seed stream: reservoir choices are a reporting
  // concern, drawing from a sim stream would perturb replay.
  Rng reservoir_rng_;
};

}  // namespace actyp::profile
