// MetricsExporter: serializes finished scenario metrics for external
// tooling, in either of two line-oriented formats:
//
//   jsonl — one JSON object per report cell:
//     {"scenario":"fig6_pool_size","labels":{"machines":"400",...},
//      "metrics":{"mean_s":0.0123,...,"pool_select_p95_s":0.0041}}
//
//   prom — Prometheus text exposition (gauges), metric names prefixed
//   with "actyp_" and cell identity carried as labels:
//     # TYPE actyp_mean_s gauge
//     actyp_mean_s{scenario="fig6_pool_size",machines="400"} 0.0123
//
// The exporter is deliberately independent of the scenario layer: it
// consumes flat MetricCell records, and the driver (tools/actyp_sim)
// adapts ScenarioReport cells into them. That keeps this file reusable
// from benches and tests without dragging the registry in.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace actyp::profile {

// One exportable cell: a scenario name, ordered identity labels
// (string-valued; numeric dims pre-formatted by the caller), and
// ordered numeric metrics.
struct MetricCell {
  std::string scenario;
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> values;
};

class MetricsExporter {
 public:
  enum class Format { kJsonl, kProm };

  // Parses "jsonl" / "prom" (the --metrics-format values).
  static std::optional<Format> ParseFormat(std::string_view text);
  static std::string_view FormatName(Format format);

  explicit MetricsExporter(Format format) : format_(format) {}

  void Add(MetricCell cell);
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }

  void Write(std::ostream& out) const;
  // Writes to `path`, replacing any existing file.
  [[nodiscard]] Status WriteFile(const std::string& path) const;

 private:
  void WriteJsonl(std::ostream& out) const;
  void WriteProm(std::ostream& out) const;

  Format format_;
  std::vector<MetricCell> cells_;
};

}  // namespace actyp::profile
