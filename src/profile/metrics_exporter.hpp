// MetricsExporter: serializes finished scenario metrics for external
// tooling, in either of two line-oriented formats:
//
//   jsonl — one JSON object per report cell:
//     {"scenario":"fig6_pool_size","labels":{"machines":"400",...},
//      "metrics":{"mean_s":0.0123,...,"pool_select_p95_s":0.0041}}
//
//   prom — Prometheus text exposition (gauges), metric names prefixed
//   with "actyp_" and cell identity carried as labels:
//     # TYPE actyp_mean_s gauge
//     actyp_mean_s{scenario="fig6_pool_size",machines="400"} 0.0123
//
// The exporter is deliberately independent of the scenario layer: it
// consumes flat MetricCell records, and the driver (tools/actyp_sim)
// adapts ScenarioReport cells into them. That keeps this file reusable
// from benches and tests without dragging the registry in.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace actyp::profile {

// One exportable cell: a scenario name, ordered identity labels
// (string-valued; numeric dims pre-formatted by the caller), and
// ordered numeric metrics.
struct MetricCell {
  std::string scenario;
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> values;
};

// One cell as the exporter's jsonl line (no trailing newline) — for
// callers that splice cells into other line formats (post-mortems).
[[nodiscard]] std::string MetricCellJson(const MetricCell& cell);

class MetricsExporter {
 public:
  enum class Format { kJsonl, kProm };

  // Parses "jsonl" / "prom" (the --metrics-format values).
  static std::optional<Format> ParseFormat(std::string_view text);
  static std::string_view FormatName(Format format);

  explicit MetricsExporter(Format format) : format_(format) {}

  void Add(MetricCell cell);
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }

  void Write(std::ostream& out) const;
  // Writes to `path`, replacing any existing file.
  [[nodiscard]] Status WriteFile(const std::string& path) const;

 private:
  void WriteJsonl(std::ostream& out) const;
  void WriteProm(std::ostream& out) const;

  Format format_;
  std::vector<MetricCell> cells_;
};

// MetricsStreamer: incremental counterpart of MetricsExporter. Where
// the exporter buffers a finished run and writes once, the streamer
// appends one cell at a time — flushed immediately — so a periodic
// sim-clock hook (--metrics-interval) makes a long run observable in
// flight (`tail -f` the file). Thread-safe: sweep cells running on
// ThreadPool workers interleave whole lines, never partial ones.
//
// jsonl streams exactly the exporter's per-cell lines. prom emits each
// metric's "# TYPE" header the first time that metric is seen (samples
// are not regrouped — this is a stream), and Close() terminates the
// exposition with "# EOF".
class MetricsStreamer {
 public:
  using Format = MetricsExporter::Format;

  explicit MetricsStreamer(Format format) : format_(format) {}

  // Opens `path` for streaming, replacing any existing file.
  [[nodiscard]] Status Open(const std::string& path);
  // Streams into a caller-owned ostream instead (tests, stdout).
  void Attach(std::ostream* out);

  // Appends one cell and flushes. No-op before Open/Attach.
  void WriteCell(const MetricCell& cell);

  // Terminates the stream (prom: "# EOF") and detaches. Safe to call
  // twice; the destructor calls it.
  void Close();
  ~MetricsStreamer() { Close(); }

  [[nodiscard]] std::size_t cells_written() const;

 private:
  Format format_;
  mutable std::mutex mu_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_ = nullptr;
  std::vector<std::string> prom_typed_;  // metric names already typed
  std::size_t cells_written_ = 0;
};

}  // namespace actyp::profile
