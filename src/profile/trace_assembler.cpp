#include "profile/trace_assembler.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

#include "common/strings.hpp"

namespace actyp::profile {
namespace {

// Total order on spans: time, then stage, then request — used both for
// in-trace ordering and for the deterministic cross-cell tie-breaks.
bool SpanEarlier(const SpanRecord& a, const SpanRecord& b) {
  if (a.t_enter != b.t_enter) return a.t_enter < b.t_enter;
  if (a.t_exit != b.t_exit) return a.t_exit < b.t_exit;
  if (a.stage != b.stage) return a.stage < b.stage;
  return a.request_id < b.request_id;
}

// Slowness rank: longer traces first, request id breaking ties.
bool Slower(const RequestTrace& a, const RequestTrace& b) {
  const SimDuration da = a.end - a.start;
  const SimDuration db = b.end - b.start;
  if (da != db) return da > db;
  return a.request_id < b.request_id;
}

void FinishTrace(RequestTrace* trace) {
  std::sort(trace->spans.begin(), trace->spans.end(), SpanEarlier);
  trace->start = trace->spans.front().t_enter;
  trace->end = trace->spans.front().t_exit;
  for (const SpanRecord& span : trace->spans) {
    trace->start = std::min(trace->start, span.t_enter);
    trace->end = std::max(trace->end, span.t_exit);
    trace->stage_total[static_cast<std::size_t>(span.stage)] +=
        span.t_exit - span.t_enter;
  }
  trace->duration_s = ToSeconds(trace->end - trace->start);

  // Critical-path attribution over the non-umbrella stages; ties go to
  // the earlier pipeline stage so the answer is deterministic.
  SimDuration attributed = 0;
  std::size_t top = 0;
  SimDuration top_total = -1;
  for (std::size_t i = 1; i < kStageCount; ++i) {
    attributed += trace->stage_total[i];
    if (trace->stage_total[i] > top_total) {
      top_total = trace->stage_total[i];
      top = i;
    }
  }
  if (attributed > 0) {
    trace->top_stage = static_cast<Stage>(top);
    trace->top_share = ToSeconds(top_total) / ToSeconds(attributed);
  } else {
    trace->top_stage = Stage::kClientIssue;
    trace->top_share = 0;
  }
}

}  // namespace

AssembledTraces TraceAssembler::Assemble(
    const std::vector<SpanRecord>& spans) {
  AssembledTraces out;
  std::vector<SpanRecord> request_spans;
  request_spans.reserve(spans.size());
  for (const SpanRecord& span : spans) {
    if (IsBackgroundId(span.request_id)) {
      out.background.push_back(span);
    } else {
      request_spans.push_back(span);
    }
  }
  std::sort(out.background.begin(), out.background.end(), SpanEarlier);

  // Group on request_id by sorting, then close a trace at each id edge.
  std::sort(request_spans.begin(), request_spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.request_id != b.request_id) {
                return a.request_id < b.request_id;
              }
              return SpanEarlier(a, b);
            });
  for (const SpanRecord& span : request_spans) {
    if (out.requests.empty() ||
        out.requests.back().request_id != span.request_id) {
      out.requests.emplace_back();
      out.requests.back().request_id = span.request_id;
    }
    out.requests.back().spans.push_back(span);
  }
  for (RequestTrace& trace : out.requests) FinishTrace(&trace);
  return out;
}

TailReport TraceAssembler::Tail(const std::vector<RequestTrace>& traces,
                                double slow_fraction) {
  TailReport report;
  report.trace_count = traces.size();
  if (traces.empty()) return report;
  slow_fraction = std::clamp(slow_fraction, 0.0, 1.0);

  std::vector<std::size_t> rank(traces.size());
  std::iota(rank.begin(), rank.end(), 0);
  std::sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
    return Slower(traces[a], traces[b]);
  });

  const auto slow = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(slow_fraction * static_cast<double>(traces.size()))));
  report.slow_count = std::min(slow, traces.size());

  std::array<std::uint64_t, kStageCount> top_votes{};
  std::array<SimDuration, kStageCount> tail_total{};
  for (std::size_t i = 0; i < report.slow_count; ++i) {
    const RequestTrace& trace = traces[rank[i]];
    ++top_votes[static_cast<std::size_t>(trace.top_stage)];
    for (std::size_t s = 1; s < kStageCount; ++s) {
      tail_total[s] += trace.stage_total[s];
    }
  }
  std::size_t top = 0;
  for (std::size_t s = 1; s < kStageCount; ++s) {
    if (top_votes[s] > top_votes[top]) top = s;
  }
  report.slow_top_stage = static_cast<int>(top);

  const SimDuration attributed =
      std::accumulate(tail_total.begin(), tail_total.end(), SimDuration{0});
  if (attributed > 0) {
    for (std::size_t s = 1; s < kStageCount; ++s) {
      report.tail_share[s] =
          ToSeconds(tail_total[s]) / ToSeconds(attributed);
    }
  }
  return report;
}

// --- TraceSink -------------------------------------------------------------

void TraceSink::Add(std::uint64_t seed, std::vector<SpanRecord> spans) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.push_back(TraceCell{seed, std::move(spans)});
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

std::vector<TraceCell> TraceSink::Take() {
  std::vector<TraceCell> cells;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cells.swap(cells_);
  }
  // Cells arrive in ThreadPool completion order; re-impose a total
  // order that only depends on cell content, so the trace file is
  // byte-identical whatever --jobs was. Two cells identical under this
  // comparator are interchangeable in the output.
  std::sort(cells.begin(), cells.end(),
            [](const TraceCell& a, const TraceCell& b) {
              if (a.seed != b.seed) return a.seed < b.seed;
              if (a.spans.size() != b.spans.size()) {
                return a.spans.size() < b.spans.size();
              }
              for (std::size_t i = 0; i < a.spans.size(); ++i) {
                const SpanRecord& sa = a.spans[i];
                const SpanRecord& sb = b.spans[i];
                if (sa.t_enter != sb.t_enter) return sa.t_enter < sb.t_enter;
                if (sa.t_exit != sb.t_exit) return sa.t_exit < sb.t_exit;
                if (sa.stage != sb.stage) return sa.stage < sb.stage;
                if (sa.request_id != sb.request_id) {
                  return sa.request_id < sb.request_id;
                }
              }
              return false;
            });
  return cells;
}

// --- Chrome trace-event writer ---------------------------------------------

namespace {

class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) {
    out_ << "{\"traceEvents\":[\n";
  }

  std::ostream& Begin() {
    if (!first_) out_ << ",\n";
    first_ = false;
    return out_;
  }

  void Finish() { out_ << "\n],\"displayTimeUnit\":\"ms\"}\n"; }

 private:
  std::ostream& out_;
  bool first_ = true;
};

void WriteMetadata(EventWriter* events, const char* kind, int pid, int tid,
                   const std::string& name) {
  auto& out = events->Begin();
  out << "{\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) out << ",\"tid\":" << tid;
  out << ",\"name\":\"" << kind << "\",\"args\":{\"name\":\"" << name
      << "\"}}";
}

void WriteSpan(EventWriter* events, int pid, int tid,
               const SpanRecord& span) {
  events->Begin() << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
                  << ",\"ts\":" << span.t_enter
                  << ",\"dur\":" << span.t_exit - span.t_enter
                  << ",\"name\":\"" << StageName(span.stage)
                  << "\",\"args\":{\"request_id\":\"" << span.request_id
                  << "\"}}";
}

std::string TraceLaneName(const char* kind, const RequestTrace& trace) {
  return std::string(kind) + " req " + std::to_string(trace.request_id) +
         " (" + std::to_string(trace.end - trace.start) + " us)";
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceCell>& cells,
                      const ChromeTraceOptions& options, std::ostream& out) {
  EventWriter events(out);
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const TraceCell& cell = cells[ci];
    const int pid = static_cast<int>(ci) + 1;
    WriteMetadata(&events, "process_name", pid, -1,
                  "cell " + std::to_string(ci) + " seed " +
                      std::to_string(cell.seed));

    const AssembledTraces assembled = TraceAssembler::Assemble(cell.spans);
    const std::vector<RequestTrace>& traces = assembled.requests;
    std::vector<std::size_t> rank(traces.size());
    std::iota(rank.begin(), rank.end(), 0);
    std::sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
      return Slower(traces[a], traces[b]);
    });

    const std::size_t slow_n = std::min(options.slow_n, traces.size());
    std::vector<char> selected(traces.size(), 0);
    for (std::size_t i = 0; i < slow_n; ++i) selected[rank[i]] = 1;

    // Exemplars: the traces nearest the median duration that are not
    // already in the slow set — "what a normal request looks like".
    std::vector<std::size_t> exemplars;
    if (!traces.empty() && options.exemplar_n > 0) {
      const RequestTrace& median = traces[rank[rank.size() / 2]];
      const SimDuration median_duration = median.end - median.start;
      std::vector<std::size_t> candidates;
      for (std::size_t i = 0; i < traces.size(); ++i) {
        if (!selected[i]) candidates.push_back(i);
      }
      std::sort(candidates.begin(), candidates.end(),
                [&](std::size_t a, std::size_t b) {
                  const SimDuration da = traces[a].end - traces[a].start;
                  const SimDuration db = traces[b].end - traces[b].start;
                  const SimDuration ea = da > median_duration
                                             ? da - median_duration
                                             : median_duration - da;
                  const SimDuration eb = db > median_duration
                                             ? db - median_duration
                                             : median_duration - db;
                  if (ea != eb) return ea < eb;
                  return traces[a].request_id < traces[b].request_id;
                });
      for (std::size_t i = 0;
           i < candidates.size() && exemplars.size() < options.exemplar_n;
           ++i) {
        exemplars.push_back(candidates[i]);
      }
      // Present exemplars in request order, not distance order.
      std::sort(exemplars.begin(), exemplars.end(),
                [&](std::size_t a, std::size_t b) {
                  return traces[a].request_id < traces[b].request_id;
                });
    }

    int tid = 1;
    for (std::size_t i = 0; i < slow_n; ++i) {
      const RequestTrace& trace = traces[rank[i]];
      WriteMetadata(&events, "thread_name", pid, tid,
                    TraceLaneName("slow", trace));
      for (const SpanRecord& span : trace.spans) {
        WriteSpan(&events, pid, tid, span);
      }
      ++tid;
    }
    for (const std::size_t index : exemplars) {
      const RequestTrace& trace = traces[index];
      WriteMetadata(&events, "thread_name", pid, tid,
                    TraceLaneName("exemplar", trace));
      for (const SpanRecord& span : trace.spans) {
        WriteSpan(&events, pid, tid, span);
      }
      ++tid;
    }

    // Background lanes: one per (stage, instance), i.e. per distinct
    // BackgroundId, in id order — replica lanes then monitor lanes.
    std::uint64_t lane_id = 0;
    bool lane_open = false;
    std::vector<SpanRecord> background = assembled.background;
    std::sort(background.begin(), background.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                if (a.request_id != b.request_id) {
                  return a.request_id < b.request_id;
                }
                return SpanEarlier(a, b);
              });
    for (const SpanRecord& span : background) {
      if (!lane_open || span.request_id != lane_id) {
        if (lane_open) ++tid;
        lane_open = true;
        lane_id = span.request_id;
        const auto stage = static_cast<Stage>((span.request_id >> 56) & 0x7f);
        WriteMetadata(&events, "thread_name", pid, tid,
                      std::string(StageName(stage)) + " " +
                          std::to_string(BackgroundInstance(span.request_id)));
      }
      WriteSpan(&events, pid, tid, span);
    }
  }
  events.Finish();
}

std::optional<TraceFilter> TraceFilter::Parse(const std::string& text,
                                              std::string* error) {
  TraceFilter filter;
  for (const std::string& term : SplitSkipEmpty(text, ',')) {
    const std::string trimmed = Trim(term);
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      *error = "term '" + trimmed + "' is not key=value";
      return std::nullopt;
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key == "request") {
      const auto parsed = ParseInt(value);
      if (!parsed || *parsed < 0) {
        *error = "bad request id '" + value + "'";
        return std::nullopt;
      }
      filter.request_id = static_cast<std::uint64_t>(*parsed);
    } else if (key == "stage") {
      const auto stage = StageFromName(value);
      if (!stage) {
        *error = "unknown stage '" + value + "'";
        return std::nullopt;
      }
      filter.stage = *stage;
    } else if (key == "min-dur") {
      const auto parsed = ParseDouble(value);
      if (!parsed || !(*parsed >= 0)) {
        *error = "bad duration '" + value + "'";
        return std::nullopt;
      }
      filter.min_duration_s = *parsed;
    } else {
      *error = "unknown key '" + key +
               "' (expected request, stage, or min-dur)";
      return std::nullopt;
    }
  }
  return filter;
}

std::vector<TraceCell> FilterTraceCells(std::vector<TraceCell> cells,
                                        const TraceFilter& filter) {
  if (!filter.active()) return cells;
  for (TraceCell& cell : cells) {
    const AssembledTraces assembled = TraceAssembler::Assemble(cell.spans);
    std::vector<SpanRecord> kept;
    for (const RequestTrace& trace : assembled.requests) {
      if (filter.request_id && trace.request_id != *filter.request_id) {
        continue;
      }
      if (filter.min_duration_s > 0 &&
          trace.duration_s < filter.min_duration_s) {
        continue;
      }
      if (filter.stage) {
        const bool has_stage = std::any_of(
            trace.spans.begin(), trace.spans.end(),
            [&](const SpanRecord& s) { return s.stage == *filter.stage; });
        if (!has_stage) continue;
      }
      kept.insert(kept.end(), trace.spans.begin(), trace.spans.end());
    }
    if (filter.stage) {
      for (const SpanRecord& span : assembled.background) {
        if (span.stage == *filter.stage) kept.push_back(span);
      }
    }
    cell.spans = std::move(kept);
  }
  return cells;
}

Status WriteChromeTraceFile(const std::vector<TraceCell>& cells,
                            const ChromeTraceOptions& options,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Internal("cannot open trace output file: " + path);
  }
  WriteChromeTrace(cells, options, out);
  out.flush();
  if (!out) {
    return Internal("short write to trace output file: " + path);
  }
  return Status::Ok();
}

}  // namespace actyp::profile
