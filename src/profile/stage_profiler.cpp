#include "profile/stage_profiler.hpp"

#include <algorithm>
#include <cmath>

namespace actyp::profile {

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kClientIssue:
      return "client_issue";
    case Stage::kQmAdmit:
      return "qm_admit";
    case Stage::kPmDelegate:
      return "pm_delegate";
    case Stage::kPoolSelect:
      return "pool_select";
    case Stage::kReintegrate:
      return "reintegrate";
    case Stage::kReply:
      return "reply";
    case Stage::kReplicaSync:
      return "replica_sync";
    case Stage::kMonitorSweep:
      return "monitor_sweep";
  }
  return "unknown";
}

std::optional<Stage> StageFromName(std::string_view name) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto stage = static_cast<Stage>(i);
    if (StageName(stage) == name) return stage;
  }
  return std::nullopt;
}

std::optional<SamplingMode> SamplingModeFromName(std::string_view name) {
  if (name == "ring") return SamplingMode::kRing;
  if (name == "reservoir") return SamplingMode::kReservoir;
  return std::nullopt;
}

std::string_view SamplingModeName(SamplingMode mode) {
  return mode == SamplingMode::kRing ? "ring" : "reservoir";
}

LatencyHistogram::LatencyHistogram() : LatencyHistogram(Geometry{}) {}

LatencyHistogram::LatencyHistogram(const Geometry& geometry)
    : geometry_(geometry) {
  // Guard against degenerate geometries so BucketIndex stays total.
  if (geometry_.min_value <= 0) geometry_.min_value = 1e-9;
  if (geometry_.max_value <= geometry_.min_value) {
    geometry_.max_value = geometry_.min_value * 10.0;
  }
  if (geometry_.buckets_per_decade == 0) geometry_.buckets_per_decade = 1;
  log_scale_ =
      static_cast<double>(geometry_.buckets_per_decade) / std::log(10.0);
  const double decades =
      std::log10(geometry_.max_value / geometry_.min_value);
  const auto geometric = static_cast<std::size_t>(std::ceil(
      decades * static_cast<double>(geometry_.buckets_per_decade)));
  // [0] underflow, [1 .. geometric] geometric, [last] overflow.
  buckets_.assign(geometric + 2, 0);
}

std::size_t LatencyHistogram::BucketIndex(double value) const {
  if (value < geometry_.min_value) return 0;
  if (value >= geometry_.max_value) return buckets_.size() - 1;
  const auto index = static_cast<std::size_t>(
      std::log(value / geometry_.min_value) * log_scale_);
  return std::min(index + 1, buckets_.size() - 2);
}

double LatencyHistogram::BucketLo(std::size_t index) const {
  if (index == 0) return 0.0;
  if (index == buckets_.size() - 1) return geometry_.max_value;
  return geometry_.min_value *
         std::exp(static_cast<double>(index - 1) / log_scale_);
}

double LatencyHistogram::BucketHi(std::size_t index) const {
  if (index == 0) return geometry_.min_value;
  if (index >= buckets_.size() - 1) return std::max(max_, geometry_.max_value);
  return geometry_.min_value *
         std::exp(static_cast<double>(index) / log_scale_);
}

void LatencyHistogram::Add(double value) {
  if (!(value >= 0)) return;  // drops negatives and NaN
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  // Same geometry is a structural invariant of the callers (all cells
  // of a sweep share the profiler config); differing bucket counts
  // would silently mis-bin, so fall back to nothing in that case.
  if (buckets_.size() != other.buckets_.size()) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const auto next = cumulative + buckets_[i];
    if (static_cast<double>(next) >= target) {
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets_[i]);
      const double lo = BucketLo(i);
      const double hi = BucketHi(i);
      const double estimate = lo + within * (hi - lo);
      // The exact extremes bound the interpolation error: a single
      // observed value always reports itself.
      return std::clamp(estimate, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

namespace {
// Fixed seed for the reservoir stream: every profiler samples the same
// way, independent of scenario seeds and worker counts.
constexpr std::uint64_t kReservoirSeed = 0x5a3d1e5a3d1eULL;
}  // namespace

StageProfiler::StageProfiler() : StageProfiler(Config{}) {}

StageProfiler::StageProfiler(const Config& config)
    : ring_capacity_(std::max<std::size_t>(config.ring_capacity, 1)),
      sampling_(config.sampling),
      reservoir_capacity_(
          std::max<std::size_t>(config.reservoir_capacity, 1)),
      reservoir_rng_(kReservoirSeed) {
  histograms_.fill(LatencyHistogram(config.geometry));
  ring_.reserve(std::min<std::size_t>(ring_capacity_, 4096));
}

#if !defined(ACTYP_PROFILE_OFF)
void StageProfiler::Record(Stage stage, std::uint64_t request_id,
                           SimTime t_enter, SimTime t_exit) {
  if (t_exit < t_enter) return;
  const double seconds = ToSeconds(t_exit - t_enter);
  histograms_[static_cast<std::size_t>(stage)].Add(seconds);
  if (sampling_ == SamplingMode::kReservoir) ReservoirAdd(stage, seconds);
  ++recorded_;
  const SpanRecord record{request_id, stage, t_enter, t_exit};
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(record);
  } else {
    ring_[ring_next_] = record;
  }
  ring_next_ = (ring_next_ + 1) % ring_capacity_;
}
#endif

void StageProfiler::ReservoirAdd(Stage stage, double seconds) {
  const auto index = static_cast<std::size_t>(stage);
  std::vector<double>& reservoir = reservoirs_[index];
  const std::uint64_t seen = ++reservoir_seen_[index];
  if (reservoir.size() < reservoir_capacity_) {
    reservoir.push_back(seconds);
    return;
  }
  const std::uint64_t slot = reservoir_rng_.NextBounded(seen);
  if (slot < reservoir_capacity_) reservoir[slot] = seconds;
}

void StageProfiler::Reset() {
  for (auto& histogram : histograms_) histogram.Reset();
  ring_.clear();
  ring_next_ = 0;
  recorded_ = 0;
  for (auto& reservoir : reservoirs_) reservoir.clear();
  reservoir_seen_.fill(0);
  // Reseed so the post-reset sample depends only on post-reset spans —
  // MergedProfiler rebuilds (Reset + Merge per site) on every access
  // and must produce the same reservoir each time.
  reservoir_rng_.Seed(kReservoirSeed);
}

void StageProfiler::Merge(const StageProfiler& other) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    histograms_[i].Merge(other.histograms_[i]);
  }
  // Fold the other profiler's retained samples through the same
  // insertion path, in their retained order. When either side has
  // overflowed its capacity this is an approximation of a uniform
  // sample over the union (the retained points are each representative
  // of many), but it is deterministic: merge order is fixed by the
  // caller (site rank), never by worker scheduling.
  for (std::size_t i = 0; i < kStageCount; ++i) {
    for (const double seconds : other.reservoirs_[i]) {
      ReservoirAdd(static_cast<Stage>(i), seconds);
    }
  }
  recorded_ += other.recorded_;
}

void StageProfiler::AbsorbRing(const StageProfiler& other) {
  for (const SpanRecord& record : other.RingSnapshot()) {
    if (ring_.size() < ring_capacity_) {
      ring_.push_back(record);
    } else {
      ring_[ring_next_] = record;
    }
    ring_next_ = (ring_next_ + 1) % ring_capacity_;
  }
}

namespace {
// Nearest-rank quantile over a sorted sample.
double SampleQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  auto index = static_cast<std::size_t>(std::ceil(rank));
  index = std::clamp<std::size_t>(index, 1, sorted.size());
  return sorted[index - 1];
}
}  // namespace

StageSummary StageProfiler::Summary(Stage stage) const {
  const LatencyHistogram& histogram =
      histograms_[static_cast<std::size_t>(stage)];
  StageSummary summary;
  summary.count = histogram.count();
  summary.mean_s = histogram.mean();
  summary.p50_s = histogram.Quantile(0.50);
  summary.p95_s = histogram.Quantile(0.95);
  summary.p99_s = histogram.Quantile(0.99);
  summary.max_s = histogram.max();
  // Reservoir mode: quantiles from the uniform sample's order
  // statistics instead of histogram-bucket interpolation (count, mean,
  // and max stay exact — the histogram counters see every span).
  const std::vector<double>& reservoir =
      reservoirs_[static_cast<std::size_t>(stage)];
  if (sampling_ == SamplingMode::kReservoir && !reservoir.empty()) {
    std::vector<double> sorted = reservoir;
    std::sort(sorted.begin(), sorted.end());
    summary.p50_s = SampleQuantile(sorted, 0.50);
    summary.p95_s = SampleQuantile(sorted, 0.95);
    summary.p99_s = SampleQuantile(sorted, 0.99);
  }
  return summary;
}

const std::vector<double>& StageProfiler::Reservoir(Stage stage) const {
  return reservoirs_[static_cast<std::size_t>(stage)];
}

const LatencyHistogram& StageProfiler::histogram(Stage stage) const {
  return histograms_[static_cast<std::size_t>(stage)];
}

std::vector<SpanRecord> StageProfiler::RingSnapshot() const {
  std::vector<SpanRecord> snapshot;
  snapshot.reserve(ring_.size());
  if (ring_.size() < ring_capacity_) {
    snapshot = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      snapshot.push_back(ring_[(ring_next_ + i) % ring_.size()]);
    }
  }
  return snapshot;
}

}  // namespace actyp::profile
