#include "profile/metrics_exporter.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace actyp::profile {
namespace {

// Mirrors the report writer's number style: %.9g round-trips doubles
// closely enough for gauge values while staying human-readable.
std::string FormatNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Prometheus metric/label names: [a-zA-Z_][a-zA-Z0-9_]*. Anything else
// becomes '_'.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() ||
      std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// Prometheus label values escape backslash, quote, and newline.
std::string PromValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// One jsonl line per cell — shared by the batch writer and the
// streamer so both formats stay byte-compatible.
void WriteJsonlCell(const MetricCell& cell, std::ostream& out) {
  out << "{\"scenario\":\"" << JsonEscape(cell.scenario)
      << "\",\"labels\":{";
  bool first = true;
  for (const auto& [key, value] : cell.labels) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(key) << "\":\"" << JsonEscape(value) << '"';
  }
  out << "},\"metrics\":{";
  first = true;
  for (const auto& [key, value] : cell.values) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(key) << "\":" << FormatNumber(value);
  }
  out << "}}\n";
}

// One prom sample line: actyp_<name>{scenario=...,labels...} value.
void WritePromSample(const MetricCell& cell, const std::string& metric,
                     double value, std::ostream& out) {
  out << metric << "{scenario=\"" << PromValue(cell.scenario) << '"';
  for (const auto& [label_key, label_value] : cell.labels) {
    out << ',' << PromName(label_key) << "=\"" << PromValue(label_value)
        << '"';
  }
  out << "} " << FormatNumber(value) << '\n';
}

}  // namespace

std::string MetricCellJson(const MetricCell& cell) {
  std::ostringstream out;
  WriteJsonlCell(cell, out);
  std::string text = out.str();
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

std::optional<MetricsExporter::Format> MetricsExporter::ParseFormat(
    std::string_view text) {
  if (text == "jsonl") return Format::kJsonl;
  if (text == "prom") return Format::kProm;
  return std::nullopt;
}

std::string_view MetricsExporter::FormatName(Format format) {
  return format == Format::kJsonl ? "jsonl" : "prom";
}

void MetricsExporter::Add(MetricCell cell) {
  cells_.push_back(std::move(cell));
}

void MetricsExporter::Write(std::ostream& out) const {
  if (format_ == Format::kJsonl) {
    WriteJsonl(out);
  } else {
    WriteProm(out);
  }
}

Status MetricsExporter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Internal("cannot open metrics output file: " + path);
  }
  Write(out);
  out.flush();
  if (!out) {
    return Internal("short write to metrics output file: " + path);
  }
  return Status::Ok();
}

void MetricsExporter::WriteJsonl(std::ostream& out) const {
  for (const MetricCell& cell : cells_) WriteJsonlCell(cell, out);
}

void MetricsExporter::WriteProm(std::ostream& out) const {
  // Group samples under one # TYPE header per metric name, in first-
  // appearance order (the exposition format wants each metric's samples
  // contiguous).
  std::vector<std::string> metric_order;
  for (const MetricCell& cell : cells_) {
    for (const auto& [key, value] : cell.values) {
      (void)value;
      const std::string name = "actyp_" + PromName(key);
      bool seen = false;
      for (const auto& known : metric_order) {
        if (known == name) {
          seen = true;
          break;
        }
      }
      if (!seen) metric_order.push_back(name);
    }
  }
  for (const std::string& metric : metric_order) {
    out << "# TYPE " << metric << " gauge\n";
    for (const MetricCell& cell : cells_) {
      for (const auto& [key, value] : cell.values) {
        if ("actyp_" + PromName(key) != metric) continue;
        WritePromSample(cell, metric, value, out);
      }
    }
  }
  out << "# EOF\n";
}

// --- MetricsStreamer -------------------------------------------------------

Status MetricsStreamer::Open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*file) {
    return Internal("cannot open metrics stream file: " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  owned_ = std::move(file);
  out_ = owned_.get();
  return Status::Ok();
}

void MetricsStreamer::Attach(std::ostream* out) {
  std::lock_guard<std::mutex> lock(mu_);
  owned_.reset();
  out_ = out;
}

void MetricsStreamer::WriteCell(const MetricCell& cell) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return;
  if (format_ == Format::kJsonl) {
    WriteJsonlCell(cell, *out_);
  } else {
    for (const auto& [key, value] : cell.values) {
      const std::string metric = "actyp_" + PromName(key);
      if (std::find(prom_typed_.begin(), prom_typed_.end(), metric) ==
          prom_typed_.end()) {
        prom_typed_.push_back(metric);
        *out_ << "# TYPE " << metric << " gauge\n";
      }
      WritePromSample(cell, metric, value, *out_);
    }
  }
  out_->flush();
  ++cells_written_;
}

void MetricsStreamer::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return;
  if (format_ == Format::kProm) *out_ << "# EOF\n";
  out_->flush();
  out_ = nullptr;
  owned_.reset();
}

std::size_t MetricsStreamer::cells_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_written_;
}

}  // namespace actyp::profile
