#include "workload/generator.hpp"

#include "common/logging.hpp"

namespace actyp::workload {

void BuildFleet(const FleetSpec& spec, Rng& rng,
                db::ResourceDatabase* database,
                db::ShadowAccountRegistry* shadows) {
  std::vector<double> arch_weights;
  arch_weights.reserve(spec.archs.size());
  for (const auto& [name, weight] : spec.archs) arch_weights.push_back(weight);

  for (std::size_t i = 0; i < spec.machine_count; ++i) {
    db::MachineRecord rec;
    rec.name = "m" + std::to_string(i) + "." + spec.domain + ".edu";
    rec.state = db::MachineState::kUp;
    rec.effective_speed = rng.Uniform(spec.min_speed, spec.max_speed);
    rec.num_cpus = rng.Bernoulli(0.15) ? 2 : 1;
    rec.max_allowed_load = 1.0;
    rec.dyn.load = 0.0;
    rec.dyn.available_memory_mb =
        spec.memory_choices_mb[rng.NextBounded(spec.memory_choices_mb.size())];
    rec.dyn.available_swap_mb = rec.dyn.available_memory_mb * 2;
    rec.dyn.service_flags = db::kExecutionUnitUp | db::kPvfsManagerUp;
    rec.execution_unit_port = spec.base_port;
    rec.pvfs_mount_port = static_cast<std::uint16_t>(spec.base_port + 1);
    rec.user_groups = spec.user_groups;
    rec.tool_groups = spec.tool_groups;
    rec.object_path = "/etc/punch/machines/" + rec.name;

    const std::size_t cluster =
        spec.cluster_ids.empty()
            ? i % std::max<std::size_t>(1, spec.cluster_count)
            : spec.cluster_ids[i % spec.cluster_ids.size()];
    rec.params["arch"] = spec.archs[rng.WeightedIndex(arch_weights)].first;
    rec.params["cluster"] = "c" + std::to_string(cluster);
    rec.params["domain"] = spec.domain;
    rec.params["ostype"] = rec.params["arch"] == "linux" ? "linux" : "unix";
    rec.params["owner"] = "lab" + std::to_string(cluster);

    if (shadows != nullptr && spec.shadow_accounts_per_machine > 0) {
      rec.shadow_pool = "shadow." + rec.name;
      shadows->GetOrCreate(rec.shadow_pool,
                           static_cast<std::uint32_t>(20000 + i * 100),
                           spec.shadow_accounts_per_machine);
    }

    auto added = database->Add(std::move(rec));
    if (!added.ok()) {
      ACTYP_WARN << "fleet: " << added.status().ToString();
    }
  }
}

std::string QueryGenerator::Next(Rng& rng) const {
  std::size_t cluster;
  if (spec_.hot_fraction > 0.0 && rng.Bernoulli(spec_.hot_fraction)) {
    cluster = 0;
  } else {
    cluster = rng.NextBounded(std::max<std::size_t>(1, spec_.cluster_count));
  }
  return ForCluster(cluster);
}

std::string QueryGenerator::ForCluster(std::size_t c) const {
  std::string text;
  text += "punch.rsrc.cluster = c" + std::to_string(c) + "\n";
  if (spec_.include_memory_constraint) {
    text += "punch.rsrc.memory = >=" + std::to_string(
                                           static_cast<long long>(
                                               spec_.min_memory_mb)) +
            "\n";
  }
  text += "punch.user.login = " + spec_.user_login + "\n";
  text += "punch.user.accessgroup = " + spec_.access_group + "\n";
  return text;
}

}  // namespace actyp::workload
