// Synthetic PUNCH job CPU-time model (paper Fig. 9).
//
// The paper characterizes 236,222 production runs: the mass sits at a
// few seconds (the figure's Y axis is truncated at its 19,756-run peak
// bucket), the X axis is truncated at 1,000 s, and the tail extends past
// 1e6 seconds. We model this with a three-component mixture:
//   - interactive runs: log-normal around ~5 s      (dominant mode)
//   - standard batch:   log-normal around ~80 s
//   - long simulations: Pareto tail reaching 1e6+ s
// Weights and parameters are exposed so benches can recalibrate.
#pragma once

#include "common/rng.hpp"

namespace actyp::workload {

struct CpuTimeParams {
  double w_interactive = 0.68;
  double mu_interactive = 1.6;     // ln seconds: e^1.6 ~ 5 s
  double sigma_interactive = 0.9;

  double w_batch = 0.27;
  double mu_batch = 4.4;           // e^4.4 ~ 81 s
  double sigma_batch = 1.1;

  double w_tail = 0.05;
  double tail_scale = 400.0;       // seconds
  double tail_alpha = 0.85;        // heavy: E[x] diverges, max > 1e6 s
};

class CpuTimeModel {
 public:
  explicit CpuTimeModel(CpuTimeParams params = {}) : params_(params) {}

  // Draws one job CPU time in seconds (> 0).
  [[nodiscard]] double Sample(Rng& rng) const;

  [[nodiscard]] const CpuTimeParams& params() const { return params_; }

 private:
  CpuTimeParams params_;
};

}  // namespace actyp::workload
