#include "workload/cpu_time.hpp"

#include <algorithm>

namespace actyp::workload {

double CpuTimeModel::Sample(Rng& rng) const {
  const double total = params_.w_interactive + params_.w_batch + params_.w_tail;
  double roll = rng.NextDouble() * total;
  double seconds;
  if ((roll -= params_.w_interactive) < 0) {
    seconds = rng.LogNormal(params_.mu_interactive, params_.sigma_interactive);
  } else if ((roll -= params_.w_batch) < 0) {
    seconds = rng.LogNormal(params_.mu_batch, params_.sigma_batch);
  } else {
    seconds = rng.Pareto(params_.tail_scale, params_.tail_alpha);
  }
  return std::max(seconds, 0.01);
}

}  // namespace actyp::workload
