// Synthetic fleet and query generators for the controlled experiments.
//
// FleetSpec builds a white-pages database like the paper's experimental
// one: N machines uniformly distributed across C clusters (the pools of
// Figs. 4-8 aggregate by cluster), with realistic architecture, memory,
// and speed distributions plus shadow-account pools.
//
// QueryTemplate renders queries that stripe randomly across clusters
// ("client queries were distributed randomly across pools").
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "db/shadow.hpp"

namespace actyp::workload {

struct FleetSpec {
  std::size_t machine_count = 3200;
  std::size_t cluster_count = 1;  // pools aggregate on the cluster param
  // Architectures with selection weights.
  std::vector<std::pair<std::string, double>> archs = {
      {"sun", 0.45}, {"hp", 0.25}, {"linux", 0.20}, {"sgi", 0.10}};
  std::vector<double> memory_choices_mb = {64, 128, 256, 512, 1024};
  double min_speed = 0.5, max_speed = 3.0;
  std::string domain = "purdue";
  std::vector<std::string> user_groups;  // empty = unrestricted
  std::vector<std::string> tool_groups = {"simulation", "cad", "general"};
  std::size_t shadow_accounts_per_machine = 8;
  std::uint16_t base_port = 7000;
  // Explicit cluster ids to stripe machines across (machine j lands in
  // cluster_ids[j % size]). Empty = 0..cluster_count-1. Used by multi-
  // site scenarios, where each site's white pages holds only the
  // clusters that site owns while cluster numbering stays global.
  std::vector<std::size_t> cluster_ids;
};

// Populates `database` (and shadow pools, when `shadows` != nullptr)
// according to the spec. Machine i lands in cluster i % cluster_count,
// giving the uniform distribution of machines across pools used in the
// paper's experiments.
void BuildFleet(const FleetSpec& spec, Rng& rng, db::ResourceDatabase* database,
                db::ShadowAccountRegistry* shadows);

// A query generator: renders native query text. The default template
// requests a specific cluster chosen uniformly at random, matching the
// paper's experimental setup; hot_fraction biases toward cluster 0 to
// model class-assignment locality.
struct QuerySpec {
  std::size_t cluster_count = 1;
  double hot_fraction = 0.0;  // probability of targeting cluster 0
  std::string user_login = "client";
  std::string access_group = "ece";
  bool include_memory_constraint = false;
  double min_memory_mb = 10;
  std::string domain = "purdue";
};

class QueryGenerator {
 public:
  explicit QueryGenerator(QuerySpec spec) : spec_(std::move(spec)) {}

  // Renders one query; the target cluster is sampled from `rng`.
  [[nodiscard]] std::string Next(Rng& rng) const;

  // The query that aggregates cluster `c` (used to pre-create pools).
  [[nodiscard]] std::string ForCluster(std::size_t c) const;

 private:
  QuerySpec spec_;
};

}  // namespace actyp::workload
