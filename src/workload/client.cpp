#include "workload/client.hpp"

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "pipeline/protocol.hpp"

namespace actyp::workload {

void ResponseCollector::RecordResponse(SimDuration response_time) {
  std::lock_guard<std::mutex> lock(mu_);
  response_.Add(ToSeconds(response_time));
  quantiles_.Add(ToSeconds(response_time));
}

void ResponseCollector::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++failures_;
}

void ResponseCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  response_.Reset();
  quantiles_ = QuantileSampler();
  failures_ = 0;
}

RunningStats ResponseCollector::response_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return response_;
}

double ResponseCollector::QuantileSeconds(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quantiles_.Quantile(q);
}

std::uint64_t ResponseCollector::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

std::uint64_t ResponseCollector::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return response_.count();
}

ClientNode::ClientNode(ClientConfig config) : config_(std::move(config)) {}

void ClientNode::OnStart(net::NodeContext& ctx) {
  // Stagger client start-up slightly so closed-loop clients do not send
  // their first query in lock-step.
  net::Message kick{net::msg::kTick};
  kick.SetHeader("action", "next-query");
  ctx.ScheduleSelf(static_cast<SimDuration>(ctx.rng().NextBounded(1000)),
                   std::move(kick));
}

void ClientNode::OnMessage(const net::Envelope& envelope,
                           net::NodeContext& ctx) {
  const net::Message& message = envelope.message;

  if (message.type == net::msg::kTick) {
    const std::string action = message.Header("action");
    if (action == "next-query") {
      SendNextQuery(ctx);
    } else if (action == "request-timeout") {
      std::uint64_t request_id = 0;
      if (auto rid = ParseInt(message.Header(net::hdr::kRequestId))) {
        request_id = static_cast<std::uint64_t>(*rid);
      }
      if (request_id == inflight_request_ && inflight_request_ != 0) {
        // The request (or its reply) was lost: give up and move on.
        ++stats_.failures;
        if (config_.collector != nullptr) config_.collector->RecordFailure();
        inflight_request_ = 0;
        timeout_timer_ = 0;
        CompleteInteraction(ctx);
      }
    } else if (action == "job-done") {
      std::uint64_t request_id = 0;
      if (auto rid = ParseInt(message.Header(net::hdr::kRequestId))) {
        request_id = static_cast<std::uint64_t>(*rid);
      }
      auto it = held_.find(request_id);
      if (it != held_.end()) {
        ctx.Send(it->second.pool_address,
                 pipeline::MakeReleaseMessage(it->second.machine_id,
                                              it->second.session_key));
        held_.erase(it);
      }
      CompleteInteraction(ctx);
    }
    return;
  }

  if (message.type == net::msg::kAllocation) {
    auto allocation = pipeline::ParseAllocationMessage(message);
    if (!allocation.ok()) {
      ACTYP_WARN << "client " << config_.client_id << ": bad allocation: "
                 << allocation.status().ToString();
      return;
    }
    if (allocation->request_id != inflight_request_) {
      // Stale result (e.g. duplicate after first-match): release it.
      ctx.Send(allocation->pool_address,
               pipeline::MakeReleaseMessage(allocation->machine_id,
                                            allocation->session_key));
      return;
    }
    ++stats_.allocations;
    if (config_.collector != nullptr) {
      config_.collector->RecordResponse(ctx.Now() - inflight_sent_at_);
    }
    inflight_request_ = 0;
    if (timeout_timer_ != 0) {
      ctx.CancelSelf(timeout_timer_);
      timeout_timer_ = 0;
    }

    const SimDuration job = config_.job_duration != nullptr
                                ? config_.job_duration(ctx.rng())
                                : 0;
    if (job > 0) {
      held_[allocation->request_id] = *allocation;
      net::Message done{net::msg::kTick};
      done.SetHeader("action", "job-done");
      done.SetHeader(net::hdr::kRequestId,
                     std::to_string(allocation->request_id));
      ctx.ScheduleSelf(job, std::move(done));
    } else {
      ctx.Send(allocation->pool_address,
               pipeline::MakeReleaseMessage(allocation->machine_id,
                                            allocation->session_key));
      CompleteInteraction(ctx);
    }
    return;
  }

  if (message.type == net::msg::kFailure) {
    std::uint64_t request_id = 0;
    if (auto rid = ParseInt(message.Header(net::hdr::kRequestId))) {
      request_id = static_cast<std::uint64_t>(*rid);
    }
    if (request_id != inflight_request_) return;  // stale fragment failure
    ++stats_.failures;
    if (config_.collector != nullptr) config_.collector->RecordFailure();
    inflight_request_ = 0;
    if (timeout_timer_ != 0) {
      ctx.CancelSelf(timeout_timer_);
      timeout_timer_ = 0;
    }
    CompleteInteraction(ctx);
    return;
  }
}

void ClientNode::SendNextQuery(net::NodeContext& ctx) {
  if (config_.max_requests > 0 && stats_.sent >= config_.max_requests) return;
  if (config_.horizon > 0 && ctx.Now() >= config_.horizon) return;

  const std::uint64_t request_id =
      (static_cast<std::uint64_t>(config_.client_id) << 32) | next_seq_++;
  inflight_request_ = request_id;
  inflight_sent_at_ = ctx.Now();
  ++stats_.sent;

  net::Message query{net::msg::kQuery};
  query.SetHeader(net::hdr::kReplyTo, ctx.self());
  query.SetHeader(net::hdr::kRequestId, std::to_string(request_id));
  if (!config_.language.empty()) query.SetHeader("language", config_.language);
  if (config_.qos_first_match) {
    query.SetHeader(pipeline::phdr::kQosFirstMatch, "1");
  }
  query.body = config_.make_query(ctx.rng());
  ctx.Send(config_.entry, std::move(query));

  if (config_.request_timeout > 0) {
    net::Message timeout{net::msg::kTick};
    timeout.SetHeader("action", "request-timeout");
    timeout.SetHeader(net::hdr::kRequestId, std::to_string(request_id));
    timeout_timer_ =
        ctx.ScheduleSelf(config_.request_timeout, std::move(timeout));
  }
}

void ClientNode::CompleteInteraction(net::NodeContext& ctx) {
  net::Message next{net::msg::kTick};
  next.SetHeader("action", "next-query");
  ctx.ScheduleSelf(config_.think_time, std::move(next));
}

}  // namespace actyp::workload
