#include "workload/client.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "pipeline/protocol.hpp"

namespace actyp::workload {

void ResponseCollector::RecordResponse(SimDuration response_time) {
  std::lock_guard<std::mutex> lock(mu_);
  response_.Add(ToSeconds(response_time));
  quantiles_.Add(ToSeconds(response_time));
}

void ResponseCollector::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++failures_;
}

void ResponseCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  response_.Reset();
  quantiles_ = QuantileSampler();
  failures_ = 0;
}

void ResponseCollector::MergeFrom(const ResponseCollector& other) {
  std::scoped_lock lock(mu_, other.mu_);
  response_.Merge(other.response_);
  quantiles_.Merge(other.quantiles_);
  failures_ += other.failures_;
}

RunningStats ResponseCollector::response_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return response_;
}

double ResponseCollector::QuantileSeconds(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quantiles_.Quantile(q);
}

std::uint64_t ResponseCollector::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

std::uint64_t ResponseCollector::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return response_.count();
}

ClientNode::ClientNode(ClientConfig config) : config_(std::move(config)) {}

void ClientNode::OnStart(net::NodeContext& ctx) {
  // Stagger client start-up slightly so closed-loop clients do not send
  // their first query in lock-step.
  net::Message kick{net::msg::kTick};
  kick.SetHeader("action", "next-query");
  ctx.ScheduleSelf(static_cast<SimDuration>(ctx.rng().NextBounded(1000)),
                   std::move(kick));
}

void ClientNode::OnMessage(const net::Envelope& envelope,
                           net::NodeContext& ctx) {
  const net::Message& message = envelope.message;

  if (message.type == net::msg::kTick) {
    const std::string action = message.Header("action");
    if (action == "next-query") {
      SendNextQuery(ctx);
    } else if (action == "request-timeout") {
      const std::uint64_t request_id = pipeline::RequestIdOf(message);
      if (request_id == inflight_request_ && inflight_request_ != 0) {
        timeout_timer_ = 0;
        if (attempt_ < config_.retry_max) {
          // The request (or its reply) was lost: resend after a jittered
          // exponential backoff instead of abandoning the interaction.
          ++attempt_;
          const int shift =
              static_cast<int>(std::min<std::size_t>(attempt_ - 1, 16));
          const SimDuration base =
              std::max<SimDuration>(1, config_.retry_backoff) << shift;
          const SimDuration delay =
              base / 2 +
              static_cast<SimDuration>(ctx.rng().NextDouble() *
                                       static_cast<double>(base / 2 + 1));
          net::Message retry{net::msg::kTick};
          retry.SetHeader("action", "retry-send");
          retry.SetHeader(net::hdr::kRequestId, std::to_string(request_id));
          ctx.ScheduleSelf(std::max<SimDuration>(delay, 1), std::move(retry));
        } else {
          // Retries exhausted (or disabled): give up and move on.
          ++stats_.failures;
          if (config_.collector != nullptr) config_.collector->RecordFailure();
          inflight_request_ = 0;
          CompleteInteraction(ctx);
        }
      }
    } else if (action == "retry-send") {
      const std::uint64_t request_id = pipeline::RequestIdOf(message);
      // A reply that raced the backoff already closed the request; only
      // resend when it is still the in-flight one.
      if (request_id == inflight_request_ && inflight_request_ != 0) {
        ResendInflight(ctx);
      }
    } else if (action == "job-done") {
      const std::uint64_t request_id = pipeline::RequestIdOf(message);
      auto it = held_.find(request_id);
      if (it != held_.end()) {
        ctx.Send(it->second.pool_address,
                 pipeline::MakeReleaseMessage(it->second.machine_id,
                                              it->second.session_key));
        held_.erase(it);
      }
      CompleteInteraction(ctx);
    }
    return;
  }

  if (message.type == net::msg::kAllocation) {
    auto allocation = pipeline::ParseAllocationMessage(message);
    if (!allocation.ok()) {
      ACTYP_WARN << "client " << config_.client_id << ": bad allocation: "
                 << allocation.status().ToString();
      return;
    }
    if (allocation->request_id != inflight_request_) {
      // Stale result (e.g. duplicate after first-match): release it.
      ctx.Send(allocation->pool_address,
               pipeline::MakeReleaseMessage(allocation->machine_id,
                                            allocation->session_key));
      return;
    }
    ++stats_.allocations;
    if (config_.collector != nullptr) {
      config_.collector->RecordResponse(ctx.Now() - inflight_sent_at_);
    }
    if (config_.profiler != nullptr) {
      // The last hop back, and the client-observed end-to-end span
      // (first send through retries to the accepted allocation) — the
      // same interval the response collector measures.
      config_.profiler->Record(profile::Stage::kReply,
                               allocation->request_id, envelope.sent_at,
                               ctx.Now());
      config_.profiler->Record(profile::Stage::kClientIssue,
                               allocation->request_id, inflight_sent_at_,
                               ctx.Now());
    }
    inflight_request_ = 0;
    if (timeout_timer_ != 0) {
      ctx.CancelSelf(timeout_timer_);
      timeout_timer_ = 0;
    }

    const SimDuration job = config_.job_duration != nullptr
                                ? config_.job_duration(ctx.rng())
                                : 0;
    if (job > 0) {
      held_[allocation->request_id] = *allocation;
      net::Message done{net::msg::kTick};
      done.SetHeader("action", "job-done");
      done.SetHeader(net::hdr::kRequestId,
                     std::to_string(allocation->request_id));
      ctx.ScheduleSelf(job, std::move(done));
    } else {
      ctx.Send(allocation->pool_address,
               pipeline::MakeReleaseMessage(allocation->machine_id,
                                            allocation->session_key));
      CompleteInteraction(ctx);
    }
    return;
  }

  if (message.type == net::msg::kFailure) {
    const std::uint64_t request_id = pipeline::RequestIdOf(message);
    if (request_id != inflight_request_) return;  // stale fragment failure
    ++stats_.failures;
    if (config_.collector != nullptr) config_.collector->RecordFailure();
    inflight_request_ = 0;
    if (timeout_timer_ != 0) {
      ctx.CancelSelf(timeout_timer_);
      timeout_timer_ = 0;
    }
    CompleteInteraction(ctx);
    return;
  }
}

void ClientNode::SendNextQuery(net::NodeContext& ctx) {
  if (config_.max_requests > 0 && stats_.sent >= config_.max_requests) return;
  if (config_.horizon > 0 && ctx.Now() >= config_.horizon) return;

  const std::uint64_t request_id =
      (static_cast<std::uint64_t>(config_.client_id) << 32) | next_seq_++;
  inflight_request_ = request_id;
  inflight_sent_at_ = ctx.Now();
  attempt_ = 0;
  ++stats_.sent;

  inflight_body_ = config_.make_query(ctx.rng());
  PostInflightQuery(ctx);
}

// Sends the in-flight request (headers rebuilt from config, body from
// inflight_body_) to the current attempt's entry point and arms the
// give-up timer. Shared by the first attempt and every retry, so a
// header added to queries can never diverge between the two paths.
void ClientNode::PostInflightQuery(net::NodeContext& ctx) {
  net::Message query{net::msg::kQuery};
  query.SetHeader(net::hdr::kReplyTo, ctx.self());
  query.SetHeader(net::hdr::kRequestId, std::to_string(inflight_request_));
  if (!config_.language.empty()) query.SetHeader("language", config_.language);
  if (config_.qos_first_match) {
    query.SetHeader(pipeline::phdr::kQosFirstMatch, "1");
  }
  query.body = inflight_body_;
  ctx.Send(EntryForAttempt(), std::move(query));

  if (config_.request_timeout > 0) {
    net::Message timeout{net::msg::kTick};
    timeout.SetHeader("action", "request-timeout");
    timeout.SetHeader(net::hdr::kRequestId,
                      std::to_string(inflight_request_));
    timeout_timer_ =
        ctx.ScheduleSelf(config_.request_timeout, std::move(timeout));
  }
}

const net::Address& ClientNode::EntryForAttempt() const {
  if (attempt_ == 0 || config_.fallback_entries.empty()) {
    return config_.entry;
  }
  const std::size_t pick =
      (attempt_ - 1) % (config_.fallback_entries.size() + 1);
  return pick == config_.fallback_entries.size()
             ? config_.entry
             : config_.fallback_entries[pick];
}

void ClientNode::ResendInflight(net::NodeContext& ctx) {
  // Counted here — when the retry actually goes on the wire — not when
  // the backoff was scheduled: a reply racing the backoff cancels the
  // resend, and the metric must not count retries that never happened.
  ++stats_.retries;
  PostInflightQuery(ctx);
}

void ClientNode::CompleteInteraction(net::NodeContext& ctx) {
  net::Message next{net::msg::kTick};
  next.SetHeader("action", "next-query");
  ctx.ScheduleSelf(config_.think_time, std::move(next));
}

}  // namespace actyp::workload
