// Closed-loop client node: issues a query, waits for the allocation (or
// failure), optionally holds the machine for a job duration, releases
// it, thinks, and repeats — "clients continuously send queries to the
// ActYP service" (Fig. 6) is the default zero-think configuration.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "net/node.hpp"
#include "pipeline/protocol.hpp"
#include "profile/stage_profiler.hpp"

namespace actyp::workload {

// Thread-safe sink for client-side measurements (shared by all clients
// of one experiment).
class ResponseCollector {
 public:
  void RecordResponse(SimDuration response_time);
  void RecordFailure();
  void Reset();
  // Folds `other` into this collector (Welford merge + sampler replay).
  // Call in a fixed order across sources for deterministic quantiles.
  void MergeFrom(const ResponseCollector& other);

  [[nodiscard]] RunningStats response_stats() const;
  [[nodiscard]] double QuantileSeconds(double q) const;
  [[nodiscard]] std::uint64_t failures() const;
  [[nodiscard]] std::uint64_t completed() const;

 private:
  mutable std::mutex mu_;
  RunningStats response_;
  QuantileSampler quantiles_;
  std::uint64_t failures_ = 0;
};

struct ClientConfig {
  std::uint32_t client_id = 0;
  net::Address entry;  // query-manager address
  // Alternate query-manager entry points: retries rotate through
  // [entry, fallback_entries...], so a client whose entry stage died
  // fails over instead of re-sending into the void.
  std::vector<net::Address> fallback_entries;
  std::function<std::string(Rng&)> make_query;
  // Think time between completing one interaction and issuing the next.
  SimDuration think_time = 0;
  // Job duration sampler; nullptr (or zero result) releases immediately
  // after the allocation arrives (pure scheduling load, as in Figs 4-8).
  std::function<SimDuration(Rng&)> job_duration;
  std::size_t max_requests = 0;  // 0 = unlimited
  ResponseCollector* collector = nullptr;
  // Stage-span sink for the client_issue / reply spans (not owned).
  // Null disables profiling.
  profile::StageProfiler* profiler = nullptr;
  std::string language;     // non-native query language tag, if any
  bool qos_first_match = false;
  // Stop issuing queries after this sim time (0 = no horizon).
  SimTime horizon = 0;
  // Give up on an unanswered request after this long and move on
  // (counts as a failure); 0 disables. Needed on lossy transports.
  SimDuration request_timeout = 0;
  // Resend a timed-out request up to this many times before giving up
  // (0 = fail on the first timeout, the legacy behavior). Retries wait a
  // seeded, jittered exponential backoff starting at `retry_backoff`,
  // so lossy-scenario success rates recover instead of burning the
  // give-up timer once per interaction.
  std::size_t retry_max = 0;
  SimDuration retry_backoff = Millis(250);
};

struct ClientStatsLocal {
  std::uint64_t sent = 0;
  std::uint64_t allocations = 0;
  std::uint64_t failures = 0;
  std::uint64_t retries = 0;
};

class ClientNode final : public net::Node {
 public:
  explicit ClientNode(ClientConfig config);

  void OnStart(net::NodeContext& ctx) override;
  void OnMessage(const net::Envelope& envelope, net::NodeContext& ctx) override;

  [[nodiscard]] const ClientStatsLocal& stats() const { return stats_; }

  // Chaos-invariant probes: the in-flight request id (0 = every issued
  // request reached a terminal state) and allocations still held.
  [[nodiscard]] std::uint64_t inflight_request() const {
    return inflight_request_;
  }
  [[nodiscard]] std::size_t held_count() const { return held_.size(); }
  [[nodiscard]] std::uint32_t client_id() const { return config_.client_id; }

 private:
  void SendNextQuery(net::NodeContext& ctx);
  // Entry point for the current attempt: the configured entry first,
  // then the fallbacks in rotation as retries accumulate.
  [[nodiscard]] const net::Address& EntryForAttempt() const;
  // Sends the in-flight request to the current attempt's entry point
  // and arms the give-up timer (shared by first attempts and retries).
  void PostInflightQuery(net::NodeContext& ctx);
  // Re-issues the in-flight request (same id and body) and re-arms the
  // give-up timer; response time still measures from the first send.
  void ResendInflight(net::NodeContext& ctx);
  void CompleteInteraction(net::NodeContext& ctx);

  ClientConfig config_;
  ClientStatsLocal stats_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t inflight_request_ = 0;
  SimTime inflight_sent_at_ = 0;
  std::string inflight_body_;   // kept for retries
  std::size_t attempt_ = 0;     // retries used on the in-flight request
  // Give-up timer for the in-flight request; cancelled when the reply
  // arrives so lossy runs do not drown in dead timeout events.
  net::TimerId timeout_timer_ = 0;
  std::map<std::uint64_t, pipeline::Allocation> held_;  // keyed by request id
};

}  // namespace actyp::workload
