# Chaos-repro gate, end to end: the hostile generator must find the
# seeded known violation (zero give-up timer under loss wedges the
# closed loop), the shrinker must reduce it, and the dumped bundle must
# replay byte-identically — twice — through `actyp_sim --config`, still
# reporting the violation.
# Invoked by ctest with -DCHAOS=<actyp_chaos> -DSIM=<actyp_sim>
# -DOUT=<build-dir>.
set(bundles ${OUT}/chaos_repro)
file(REMOVE_RECURSE ${bundles})

execute_process(COMMAND ${CHAOS} --hostile --budget 6 --seed 1 --jobs 2
                --time-scale 0.2 --out ${bundles}
                OUTPUT_VARIABLE sweep RESULT_VARIABLE sweep_rc)
if(NOT sweep_rc EQUAL 1)
  message(FATAL_ERROR "hostile sweep should exit 1 with findings, got "
          "rc=${sweep_rc}:\n${sweep}")
endif()
if(NOT sweep MATCHES "shrunk [0-9]+ -> [0-9]+ event")
  message(FATAL_ERROR "hostile sweep did not shrink a finding:\n${sweep}")
endif()

file(GLOB bundle_files ${bundles}/chaos_repro_seed*.conf)
if(bundle_files STREQUAL "")
  message(FATAL_ERROR "hostile sweep wrote no repro bundle:\n${sweep}")
endif()
list(GET bundle_files 0 bundle)

execute_process(COMMAND ${SIM} --config ${bundle}
                OUTPUT_VARIABLE first RESULT_VARIABLE first_rc)
execute_process(COMMAND ${SIM} --config ${bundle}
                OUTPUT_VARIABLE second RESULT_VARIABLE second_rc)
if(NOT first_rc EQUAL 0)
  message(FATAL_ERROR "bundle replay failed (rc=${first_rc}):\n${first}")
endif()
if(NOT second_rc EQUAL 0)
  message(FATAL_ERROR "bundle re-replay failed (rc=${second_rc}):\n${second}")
endif()
if(NOT first STREQUAL second)
  message(FATAL_ERROR "bundle replay is not byte-identical:\n"
          "first:  ${first}\nsecond: ${second}")
endif()
if(NOT first MATCHES "\"violations\":[1-9]")
  message(FATAL_ERROR "bundle replay lost the violation:\n${first}")
endif()
message(STATUS "chaos repro: found, shrunk, and replayed ${bundle}")
