# Observability gate, end to end:
#  - --telemetry-out emits well-formed gauge samples and the file (plus
#    the --flight-out dump and the report itself) is byte-identical
#    across --jobs values,
#  - arming the recorder/sampler leaves the report byte-identical to a
#    plain run,
#  - a clear message rejects a non-positive --metrics-interval at the
#    flag and at the config-file key,
#  - the hostile chaos sweep writes a post-mortem dump next to its repro
#    bundle and actyp_postmortem names the first implicated event,
#  - actyp_tracediff diffs two --trace-out files on shared request ids.
# Invoked by ctest with -DSIM=<actyp_sim> -DCHAOS=<actyp_chaos>
# -DPOSTMORTEM=<actyp_postmortem> -DTRACEDIFF=<actyp_tracediff>
# -DOUT=<build-dir>.
set(work ${OUT}/obs_smoke)
file(REMOVE_RECURSE ${work})
file(MAKE_DIRECTORY ${work})

set(base_args --scenario fig6_pool_size --json --machines 200 --clients 4
    --time-scale 0.2 --stable)

# --- telemetry + flight: deterministic across --jobs, inert on report ---
execute_process(COMMAND ${SIM} ${base_args}
                OUTPUT_VARIABLE plain RESULT_VARIABLE plain_rc)
if(NOT plain_rc EQUAL 0)
  message(FATAL_ERROR "plain run failed (rc=${plain_rc}):\n${plain}")
endif()

execute_process(COMMAND ${SIM} ${base_args} --jobs 1
                --telemetry-out ${work}/tele1.jsonl
                --flight-out ${work}/flight1.jsonl
                OUTPUT_VARIABLE obs1 RESULT_VARIABLE obs1_rc)
execute_process(COMMAND ${SIM} ${base_args} --jobs 2
                --telemetry-out ${work}/tele2.jsonl
                --flight-out ${work}/flight2.jsonl
                OUTPUT_VARIABLE obs2 RESULT_VARIABLE obs2_rc)
if(NOT obs1_rc EQUAL 0 OR NOT obs2_rc EQUAL 0)
  message(FATAL_ERROR "telemetry runs failed "
          "(rc=${obs1_rc}/${obs2_rc}):\n${obs1}\n${obs2}")
endif()
if(NOT plain STREQUAL obs1)
  message(FATAL_ERROR "arming telemetry/flight changed the report:\n"
          "plain: ${plain}\nobs:   ${obs1}")
endif()
if(NOT obs1 STREQUAL obs2)
  message(FATAL_ERROR "report differs across --jobs:\n${obs1}\n${obs2}")
endif()

file(READ ${work}/tele1.jsonl tele1)
file(READ ${work}/tele2.jsonl tele2)
if(NOT tele1 STREQUAL tele2)
  message(FATAL_ERROR "--telemetry-out differs across --jobs")
endif()
if(NOT tele1 MATCHES "\"scenario\":\"telemetry\"")
  message(FATAL_ERROR "telemetry output missing sample cells:\n${tele1}")
endif()
if(NOT tele1 MATCHES "\"t_s\":" OR NOT tele1 MATCHES "\"completed\":"
   OR NOT tele1 MATCHES "\"pending_events\":")
  message(FATAL_ERROR "telemetry output missing gauges:\n${tele1}")
endif()

file(READ ${work}/flight1.jsonl flight1)
file(READ ${work}/flight2.jsonl flight2)
if(NOT flight1 STREQUAL flight2)
  message(FATAL_ERROR "--flight-out differs across --jobs")
endif()
if(NOT flight1 MATCHES "\"kind\":\"msg_send\"")
  message(FATAL_ERROR "flight dump missing events:\n${flight1}")
endif()

# --- --metrics-interval validation: flag and config-file key ---
execute_process(COMMAND ${SIM} ${base_args} --metrics-interval 0
                ERROR_VARIABLE bad_flag RESULT_VARIABLE bad_flag_rc)
if(bad_flag_rc EQUAL 0 OR NOT bad_flag MATCHES "must be a positive")
  message(FATAL_ERROR "--metrics-interval 0 not rejected clearly "
          "(rc=${bad_flag_rc}):\n${bad_flag}")
endif()
file(WRITE ${work}/bad_interval.conf
     "scenario=fig6_pool_size\nmetrics-interval=-2\n")
execute_process(COMMAND ${SIM} --config ${work}/bad_interval.conf
                ERROR_VARIABLE bad_key RESULT_VARIABLE bad_key_rc)
if(bad_key_rc EQUAL 0 OR NOT bad_key MATCHES "must be a positive")
  message(FATAL_ERROR "config metrics-interval=-2 not rejected clearly "
          "(rc=${bad_key_rc}):\n${bad_key}")
endif()

# --- chaos post-mortem: dump written, tool blames a fault event ---
execute_process(COMMAND ${CHAOS} --hostile --budget 6 --seed 1 --jobs 2
                --time-scale 0.2 --out ${work}/bundles
                OUTPUT_VARIABLE sweep RESULT_VARIABLE sweep_rc)
if(NOT sweep_rc EQUAL 1)
  message(FATAL_ERROR "hostile sweep should exit 1 with findings, got "
          "rc=${sweep_rc}:\n${sweep}")
endif()
if(NOT sweep MATCHES "post-mortem dump: ")
  message(FATAL_ERROR "hostile sweep reported no post-mortem:\n${sweep}")
endif()
file(GLOB dumps ${work}/bundles/chaos_postmortem_seed*.jsonl)
if(dumps STREQUAL "")
  message(FATAL_ERROR "hostile sweep wrote no post-mortem dump:\n${sweep}")
endif()
list(GET dumps 0 dump)
file(READ ${dump} dump_text)
if(NOT dump_text MATCHES "\"type\":\"meta\""
   OR NOT dump_text MATCHES "\"type\":\"telemetry\""
   OR NOT dump_text MATCHES "\"type\":\"flight\"")
  message(FATAL_ERROR "post-mortem dump incomplete: ${dump}")
endif()

execute_process(COMMAND ${POSTMORTEM} ${dump}
                OUTPUT_VARIABLE verdict RESULT_VARIABLE verdict_rc)
if(NOT verdict_rc EQUAL 0)
  message(FATAL_ERROR "actyp_postmortem failed (rc=${verdict_rc}):\n"
          "${verdict}")
endif()
if(NOT verdict MATCHES "first implicated event: .*loss")
  message(FATAL_ERROR "post-mortem did not blame the loss window:\n"
          "${verdict}")
endif()

# --- tracediff: per-stage deltas for shared request ids ---
# The ring must hold the whole run so both files cover the same
# request-id range (the default keeps only the most recent spans).
set(trace_args --profile-ring-capacity 500000 --trace-top 100000)
execute_process(COMMAND ${SIM} ${base_args} ${trace_args}
                --trace-out ${work}/trace_a.json
                OUTPUT_VARIABLE trace_a RESULT_VARIABLE trace_a_rc)
execute_process(COMMAND ${SIM} ${base_args} ${trace_args} --loss 0.02
                --trace-out ${work}/trace_b.json
                OUTPUT_VARIABLE trace_b RESULT_VARIABLE trace_b_rc)
if(NOT trace_a_rc EQUAL 0 OR NOT trace_b_rc EQUAL 0)
  message(FATAL_ERROR "trace runs failed "
          "(rc=${trace_a_rc}/${trace_b_rc})")
endif()
execute_process(COMMAND ${TRACEDIFF} ${work}/trace_a.json
                ${work}/trace_b.json --top 3
                OUTPUT_VARIABLE diff RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "actyp_tracediff failed (rc=${diff_rc}):\n${diff}")
endif()
if(NOT diff MATCHES "requests: [1-9][0-9]* common")
  message(FATAL_ERROR "tracediff found no common requests:\n${diff}")
endif()
if(NOT diff MATCHES "per-stage span time")
  message(FATAL_ERROR "tracediff missing the per-stage table:\n${diff}")
endif()

message(STATUS "obs smoke: telemetry/flight deterministic, post-mortem "
        "blamed ${dump}, tracediff ok")
