# Chaos-smoke gate: a fixed-seed budget drawn from the clean generator
# space must (a) exit 0 with zero invariant violations and (b) emit
# byte-identical JSON across --jobs values — the determinism contract
# every chaos finding (and its shrink) depends on.
# Invoked by ctest with -DCHAOS=<path-to-actyp_chaos> -DOUT=<build-dir>.
set(args --budget 6 --seed 11 --time-scale 0.2 --json
    --out ${OUT}/chaos_smoke)

execute_process(COMMAND ${CHAOS} ${args} --jobs 1
                OUTPUT_VARIABLE serial RESULT_VARIABLE serial_rc)
execute_process(COMMAND ${CHAOS} ${args} --jobs 2
                OUTPUT_VARIABLE parallel RESULT_VARIABLE parallel_rc)

if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "chaos sweep failed (rc=${serial_rc}):\n${serial}")
endif()
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "chaos sweep --jobs 2 failed (rc=${parallel_rc}):\n"
          "${parallel}")
endif()
if(serial STREQUAL "")
  message(FATAL_ERROR "chaos sweep produced no output")
endif()
if(NOT serial STREQUAL parallel)
  message(FATAL_ERROR "--jobs 2 output differs from --jobs 1:\n"
          "serial:   ${serial}\nparallel: ${parallel}")
endif()
if(NOT serial MATCHES "all invariants held")
  message(FATAL_ERROR "clean budget reported violations:\n${serial}")
endif()
message(STATUS "chaos smoke: clean budget, byte-identical across --jobs")
