# Asserts the two determinism contracts the driver makes:
#   - sweep parallelism: --jobs 4 emits byte-identical JSON to --jobs 1
#     (cells run on worker threads, output order is fixed), and
#   - intra-cell parallelism: on an LP-sharded scenario, --cell-jobs 2/4
#     emit byte-identical JSON to --cell-jobs 1 (the conservative-window
#     engine replays the same schedule for any worker count).
# Fixed seed, --stable so wall-clock-derived metrics are zeroed.
# Invoked by ctest with -DSIM=<path-to-actyp_sim>.
set(args --scenario qm_scaling --json --stable
    --seed 1 --machines 100 --clients 2 --time-scale 0.05)

execute_process(COMMAND ${SIM} ${args} --jobs 1
                OUTPUT_VARIABLE serial RESULT_VARIABLE serial_rc)
execute_process(COMMAND ${SIM} ${args} --jobs 4
                OUTPUT_VARIABLE parallel RESULT_VARIABLE parallel_rc)

if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial run failed with ${serial_rc}")
endif()
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel run failed with ${parallel_rc}")
endif()
if(serial STREQUAL "")
  message(FATAL_ERROR "serial run produced no output")
endif()
if(NOT serial STREQUAL parallel)
  message(FATAL_ERROR "--jobs 4 output differs from --jobs 1:\n"
          "serial:   ${serial}\nparallel: ${parallel}")
endif()
message(STATUS "--jobs 4 output is byte-identical to --jobs 1")

set(cell_args --scenario big_wan --json --stable
    --seed 1 --machines 2000 --clients 24 --time-scale 0.2)

execute_process(COMMAND ${SIM} ${cell_args} --cell-jobs 1
                OUTPUT_VARIABLE cell_serial RESULT_VARIABLE cell_serial_rc)
if(NOT cell_serial_rc EQUAL 0)
  message(FATAL_ERROR "--cell-jobs 1 run failed with ${cell_serial_rc}")
endif()
if(cell_serial STREQUAL "")
  message(FATAL_ERROR "--cell-jobs 1 run produced no output")
endif()
foreach(jobs 2 4)
  execute_process(COMMAND ${SIM} ${cell_args} --cell-jobs ${jobs}
                  OUTPUT_VARIABLE cell_parallel
                  RESULT_VARIABLE cell_parallel_rc)
  if(NOT cell_parallel_rc EQUAL 0)
    message(FATAL_ERROR "--cell-jobs ${jobs} run failed with "
            "${cell_parallel_rc}")
  endif()
  if(NOT cell_serial STREQUAL cell_parallel)
    message(FATAL_ERROR "--cell-jobs ${jobs} output differs from "
            "--cell-jobs 1:\nserial:   ${cell_serial}\n"
            "parallel: ${cell_parallel}")
  endif()
  message(STATUS "--cell-jobs ${jobs} output is byte-identical to "
          "--cell-jobs 1")
endforeach()
