# Asserts that a parallel sweep emits byte-identical JSON to a serial
# one: actyp_sim --jobs 4 vs --jobs 1 at a fixed seed, --stable so the
# wall-clock-derived metrics are zeroed. Invoked by ctest with
# -DSIM=<path-to-actyp_sim>.
set(args --scenario qm_scaling --json --stable
    --seed 1 --machines 100 --clients 2 --time-scale 0.05)

execute_process(COMMAND ${SIM} ${args} --jobs 1
                OUTPUT_VARIABLE serial RESULT_VARIABLE serial_rc)
execute_process(COMMAND ${SIM} ${args} --jobs 4
                OUTPUT_VARIABLE parallel RESULT_VARIABLE parallel_rc)

if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial run failed with ${serial_rc}")
endif()
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel run failed with ${parallel_rc}")
endif()
if(serial STREQUAL "")
  message(FATAL_ERROR "serial run produced no output")
endif()
if(NOT serial STREQUAL parallel)
  message(FATAL_ERROR "--jobs 4 output differs from --jobs 1:\n"
          "serial:   ${serial}\nparallel: ${parallel}")
endif()
message(STATUS "--jobs 4 output is byte-identical to --jobs 1")
