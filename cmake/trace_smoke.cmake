# End-to-end smoke for the tracing + streaming layer:
#   - --trace-out emits well-formed Chrome trace-event JSON containing
#     replica_sync spans on a replicated WAN scenario,
#   - the trace file is byte-identical between --jobs 1 and --jobs 4,
#   - --metrics-interval streams >= 2 incremental snapshots before the
#     final report cells land in the same file.
# Invoked by ctest with -DSIM=<path-to-actyp_sim> -DOUT=<scratch-dir>.
# time-scale 0.3 keeps the run small but still reaches the monitor's
# first 5 s sweep tick (monitor cadence is not scaled), so the trace
# gets monitor_sweep spans as well as replica_sync ones.
set(args --scenario wan_partition_heal --json --stable
    --seed 7 --machines 160 --clients 4 --time-scale 0.3)

execute_process(COMMAND ${SIM} ${args} --jobs 1
                --trace-out ${OUT}/trace_serial.json
                OUTPUT_VARIABLE serial RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial trace run failed with ${serial_rc}")
endif()
file(READ ${OUT}/trace_serial.json trace)
if(NOT trace MATCHES "\"traceEvents\":")
  message(FATAL_ERROR "trace output is not trace-event JSON:\n${trace}")
endif()
if(NOT trace MATCHES "\"ph\":\"X\"")
  message(FATAL_ERROR "trace output has no complete spans:\n${trace}")
endif()
if(NOT trace MATCHES "\"name\":\"replica_sync\"")
  message(FATAL_ERROR "trace output has no replica_sync spans")
endif()
if(NOT trace MATCHES "\"name\":\"monitor_sweep\"")
  message(FATAL_ERROR "trace output has no monitor_sweep spans")
endif()

execute_process(COMMAND ${SIM} ${args} --jobs 4
                --trace-out ${OUT}/trace_parallel.json
                OUTPUT_VARIABLE parallel RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel trace run failed with ${parallel_rc}")
endif()
file(READ ${OUT}/trace_parallel.json trace_parallel)
if(NOT trace STREQUAL trace_parallel)
  message(FATAL_ERROR "--jobs 4 trace differs from --jobs 1")
endif()
if(NOT serial STREQUAL parallel)
  message(FATAL_ERROR "--jobs 4 report differs from --jobs 1 with tracing")
endif()

# --trace-filter narrows the file: a stage criterion keeps only traces
# (and background lanes) containing that stage, so request lanes with
# other stages disappear while the filtered stage survives.
execute_process(COMMAND ${SIM} ${args} --jobs 1
                --trace-out ${OUT}/trace_filtered.json
                --trace-filter stage=replica_sync
                RESULT_VARIABLE filter_rc)
if(NOT filter_rc EQUAL 0)
  message(FATAL_ERROR "--trace-filter run failed with ${filter_rc}")
endif()
file(READ ${OUT}/trace_filtered.json filtered)
if(NOT filtered MATCHES "\"name\":\"replica_sync\"")
  message(FATAL_ERROR "filtered trace lost the requested stage")
endif()
if(filtered MATCHES "\"name\":\"monitor_sweep\"")
  message(FATAL_ERROR "filtered trace kept a non-matching background lane")
endif()

# A malformed filter spec is rejected at flag-parse time.
execute_process(COMMAND ${SIM} ${args}
                --trace-out ${OUT}/trace_bad.json
                --trace-filter stage=bogus
                ERROR_VARIABLE filter_err RESULT_VARIABLE bad_filter_rc)
if(bad_filter_rc EQUAL 0)
  message(FATAL_ERROR "--trace-filter stage=bogus should fail")
endif()

# --trace-out must refuse to run blind.
execute_process(COMMAND ${SIM} ${args} --no-profile
                --trace-out ${OUT}/trace_none.json
                ERROR_VARIABLE trace_err RESULT_VARIABLE noprofile_rc)
if(noprofile_rc EQUAL 0)
  message(FATAL_ERROR "--trace-out with --no-profile should fail")
endif()

# Streaming: a long-enough cell must flush incremental snapshots (the
# "stream" cells) ahead of the final report cells.
execute_process(COMMAND ${SIM} ${args}
                --metrics-out ${OUT}/stream.jsonl --metrics-interval 2
                OUTPUT_VARIABLE streamed RESULT_VARIABLE stream_rc)
if(NOT stream_rc EQUAL 0)
  message(FATAL_ERROR "streaming run failed with ${stream_rc}")
endif()
file(STRINGS ${OUT}/stream.jsonl stream_lines REGEX "\"scenario\":\"stream\"")
list(LENGTH stream_lines snapshots)
if(snapshots LESS 2)
  message(FATAL_ERROR
          "expected >= 2 incremental snapshots, got ${snapshots}")
endif()
file(READ ${OUT}/stream.jsonl stream)
if(NOT stream MATCHES "\"scenario\":\"wan_partition_heal\"")
  message(FATAL_ERROR "stream file missing the final report cells")
endif()
message(STATUS "trace output well-formed + jobs-identical; "
        "${snapshots} streamed snapshots")
