# End-to-end smoke for the driver's metrics export: --metrics-out in
# both formats, and the --no-profile off switch. Invoked by ctest with
# -DSIM=<path-to-actyp_sim> -DOUT=<scratch-dir>.
set(args --scenario fig6_pool_size --json --stable
    --seed 3 --machines 100 --clients 2 --time-scale 0.05)

execute_process(COMMAND ${SIM} ${args}
                --metrics-out ${OUT}/metrics.jsonl
                OUTPUT_VARIABLE profiled RESULT_VARIABLE jsonl_rc)
if(NOT jsonl_rc EQUAL 0)
  message(FATAL_ERROR "jsonl export run failed with ${jsonl_rc}")
endif()
file(READ ${OUT}/metrics.jsonl jsonl)
if(NOT jsonl MATCHES "\"scenario\":\"fig6_pool_size\"")
  message(FATAL_ERROR "jsonl export missing the scenario cell:\n${jsonl}")
endif()
if(NOT jsonl MATCHES "\"pool_select_p95_s\":")
  message(FATAL_ERROR "jsonl export missing stage percentiles:\n${jsonl}")
endif()

execute_process(COMMAND ${SIM} ${args} --no-profile
                --metrics-out ${OUT}/metrics.prom --metrics-format prom
                OUTPUT_VARIABLE unprofiled RESULT_VARIABLE prom_rc)
if(NOT prom_rc EQUAL 0)
  message(FATAL_ERROR "prom export run failed with ${prom_rc}")
endif()
file(READ ${OUT}/metrics.prom prom)
if(NOT prom MATCHES "# TYPE actyp_mean_s gauge")
  message(FATAL_ERROR "prom export missing typed gauge:\n${prom}")
endif()
if(NOT prom MATCHES "# EOF")
  message(FATAL_ERROR "prom export missing EOF trailer:\n${prom}")
endif()
if(prom MATCHES "pool_select")
  message(FATAL_ERROR "--no-profile export still has stage metrics:\n${prom}")
endif()
if(unprofiled MATCHES "_p95_s")
  message(FATAL_ERROR "--no-profile report still has stage metrics")
endif()
message(STATUS "metrics export OK in both formats; --no-profile clean")
