// Ablation: dynamic vs static aggregation — the paper's second key
// claim: "static aggregation of resources for improved scheduling is
// inadequate ... because the needs of users and jobs change with both
// location and time" (§1). We shift the job mix onto one hot pool (a
// class working on an assignment, §6's temporal-locality example) and
// compare a static partition against ActYP reacting by splitting or
// replicating the hot aggregate.
#include <cstdio>

#include "actyp/scenario.hpp"

namespace {

using namespace actyp;

double Run(std::uint32_t segments, std::uint32_t replicas,
           double hot_fraction, std::uint64_t seed) {
  ScenarioConfig config;
  config.machines = 3200;
  config.clusters = 4;
  config.pool_segments = segments;
  config.pool_replicas = replicas;
  config.clients = 32;
  config.hot_fraction = hot_fraction;
  config.seed = seed;
  SimScenario scenario(config);
  scenario.Measure(Seconds(3), Seconds(15));
  return scenario.collector().response_stats().mean();
}

}  // namespace

int main() {
  std::printf("== Ablation — static vs dynamically re-aggregated pools ==\n");
  std::printf("%26s %14s %12s\n", "configuration", "hot-fraction", "mean(s)");

  // Uniform mix: the static partition is perfectly sized.
  std::printf("%26s %14.2f %12.4f\n", "static 4 pools", 0.0,
              Run(1, 1, 0.0, 51));
  // The class logs in: 90% of queries hit one pool.
  std::printf("%26s %14.2f %12.4f\n", "static 4 pools", 0.9,
              Run(1, 1, 0.9, 52));
  // ActYP reacts: the hot aggregate is split into 4 concurrent segments.
  std::printf("%26s %14.2f %12.4f\n", "re-aggregated (split x4)", 0.9,
              Run(4, 1, 0.9, 53));
  // Or replicated into 4 concurrent schedulers.
  std::printf("%26s %14.2f %12.4f\n", "re-aggregated (repl x4)", 0.9,
              Run(1, 4, 0.9, 54));

  std::printf(
      "\nshape check: the hot-spot mix degrades the static partition well\n"
      "below its uniform-mix response; re-defining the aggregation on the\n"
      "fly (splitting or replicating the hot pool) recovers most of it —\n"
      "the active yellow pages' reason to exist.\n");
  return 0;
}
