// Ablation: dynamic vs static aggregation — the paper's second key
// claim: "static aggregation of resources for improved scheduling is
// inadequate ... because the needs of users and jobs change with both
// location and time" (§1). We shift the job mix onto one hot pool (a
// class working on an assignment, §6's temporal-locality example) and
// compare a static partition against ActYP reacting by splitting or
// replicating the hot aggregate.
#include <string>

#include "bench_common.hpp"

namespace actyp {
namespace {

void RunMix(const ScenarioRunOptions& options, std::uint32_t segments,
            std::uint32_t replicas, double hot_fraction,
            std::uint64_t seed_offset, ScenarioCell* cell) {
  ScenarioConfig config;
  config.machines = options.machines.value_or(3200);
  config.clusters = 4;
  config.pool_segments = segments;
  config.pool_replicas = replicas;
  config.clients = options.clients.value_or(32);
  config.hot_fraction = hot_fraction;
  config.seed = bench::CellSeed(options, 50, seed_offset);
  config.profile = options.profile;
  SimScenario scenario(config);
  scenario.Measure(bench::ScaledSeconds(options, 3),
                   bench::ScaledSeconds(options, 15));
  cell->metrics.emplace_back("mean_s",
                             scenario.collector().response_stats().mean());
  bench::AppendStageMetrics(scenario, cell);
}

ScenarioReport RunAblDynamicAggregation(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "abl_dynamic_aggregation";
  report.title = "Ablation — static vs dynamically re-aggregated pools";

  struct Row {
    const char* configuration;
    std::uint32_t segments;
    std::uint32_t replicas;
    double hot_fraction;
    std::uint64_t seed_offset;
  };
  // Uniform mix (static partition perfectly sized), then the class logs
  // in (90% of queries hit one pool), then ActYP reacts by splitting or
  // replicating the hot aggregate.
  const Row rows[] = {
      {"static-4-pools", 1, 1, 0.0, 1},
      {"static-4-pools", 1, 1, 0.9, 2},
      {"split-x4", 4, 1, 0.9, 3},
      {"replicate-x4", 1, 4, 0.9, 4},
  };
  std::vector<bench::CellTask> tasks;
  for (const Row& row : rows) {
    tasks.push_back([row, &options] {
      ScenarioCell cell;
      cell.labels.emplace_back("configuration", row.configuration);
      cell.dims.emplace_back("hot_fraction", row.hot_fraction);
      RunMix(options, row.segments, row.replicas, row.hot_fraction,
             row.seed_offset, &cell);
      return cell;
    });
  }
  bench::RunCellTasks(options, std::move(tasks), &report);

  report.note =
      "shape check: the hot-spot mix degrades the static partition well "
      "below its uniform-mix response; re-defining the aggregation on the "
      "fly (splitting or replicating the hot pool) recovers most of it — "
      "the active yellow pages' reason to exist.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "abl_dynamic_aggregation",
    "hot-spot mix: static partition vs splitting/replicating the hot pool",
    RunAblDynamicAggregation);

}  // namespace
}  // namespace actyp
