// Figure 5: effect of the number of pools on response time in a WAN
// configuration — clients at one site (Purdue), the ActYP service at
// another (UPC, Spain), ~30 ms one-way latency. Pools still help, but
// network latency limits the reduction (the curves flatten onto an RTT
// floor).
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunFig5(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "fig5_pools_wan";
  report.title =
      "Fig. 5 — pools vs response time (WAN, ~60ms RTT), 3200 machines";
  const std::size_t machines = options.machines.value_or(3200);
  std::vector<bench::CellTask> tasks;
  for (const std::size_t clients :
       bench::SweepOr(options.clients, {8, 16, 32, 64})) {
    for (const std::size_t pools : {1, 2, 4, 8, 16}) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = pools;
      config.clients = clients;
      config.wan = true;
      config.seed = bench::CellSeed(options, 5000, pools * 100 + clients);
      tasks.push_back([config = std::move(config), &options, pools, clients] {
        const auto result =
            bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                           bench::ScaledSeconds(options, 15));
        ScenarioCell cell;
        cell.dims.emplace_back("pools", static_cast<double>(pools));
        cell.dims.emplace_back("clients", static_cast<double>(clients));
        bench::AppendMetrics(result, &cell);
        return cell;
      });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: curves mirror Fig. 4 but flatten onto a floor of a few "
      "times the WAN RTT (4 message legs x ~30ms one-way) instead of "
      "continuing to fall — 'network latency limits the reduction'.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "fig5_pools_wan",
    "pools vs response time with clients across a ~60ms-RTT WAN link",
    RunFig5);

}  // namespace
}  // namespace actyp
