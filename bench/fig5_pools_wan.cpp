// Figure 5: effect of the number of pools on response time in a WAN
// configuration — clients at one site (Purdue), the ActYP service at
// another (UPC, Spain), ~30 ms one-way latency. Pools still help, but
// network latency limits the reduction (the curves flatten onto an RTT
// floor).
#include "bench_common.hpp"

int main() {
  using namespace actyp;
  bench::PrintHeader(
      "Fig. 5 — pools vs response time (WAN, ~60ms RTT), 3200 machines",
      "pools", "clients");
  for (const std::size_t clients : {8, 16, 32, 64}) {
    for (const std::size_t pools : {1, 2, 4, 8, 16}) {
      ScenarioConfig config;
      config.machines = 3200;
      config.clusters = pools;
      config.clients = clients;
      config.wan = true;
      config.seed = 5000 + pools * 100 + clients;
      const auto result = bench::RunCell(config);
      bench::PrintRow(static_cast<long>(pools), static_cast<long>(clients),
                      result);
    }
  }
  std::printf(
      "\nshape check: curves mirror Fig. 4 but flatten onto a floor of a\n"
      "few times the WAN RTT (4 message legs x ~30ms one-way) instead of\n"
      "continuing to fall — 'network latency limits the reduction'.\n");
  return 0;
}
