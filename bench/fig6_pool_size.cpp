// Figure 6: response time as a function of pool size, with clients
// continuously sending queries to the ActYP service (closed loop, zero
// think time). The linear growth with clients is a direct consequence of
// the linear search the scheduling processes run over the pool cache.
#include "bench_common.hpp"

int main() {
  using namespace actyp;
  bench::PrintHeader("Fig. 6 — response time vs clients for pool sizes",
                     "machines", "clients");
  for (const std::size_t machines : {800, 1600, 3200}) {
    for (const std::size_t clients : {1, 5, 10, 20, 30, 40, 50, 60, 70}) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = 1;  // a single pool of the given size
      config.clients = clients;
      config.seed = 6000 + machines + clients;
      const auto result = bench::RunCell(config);
      bench::PrintRow(static_cast<long>(machines),
                      static_cast<long>(clients), result);
    }
  }
  std::printf(
      "\nshape check: for each pool size the response time grows linearly\n"
      "with the number of clients (single-server queue, linear scan); the\n"
      "slope grows with pool size (scan cost per query ~ machines).\n");
  return 0;
}
