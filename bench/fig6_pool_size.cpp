// Figure 6: response time as a function of pool size, with clients
// continuously sending queries to the ActYP service (closed loop, zero
// think time). The linear growth with clients is a direct consequence of
// the linear search the scheduling processes run over the pool cache.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunFig6(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "fig6_pool_size";
  report.title = "Fig. 6 — response time vs clients for pool sizes";
  std::vector<bench::CellTask> tasks;
  for (const std::size_t machines :
       bench::SweepOr(options.machines, {800, 1600, 3200})) {
    for (const std::size_t clients : bench::SweepOr(
             options.clients, {1, 5, 10, 20, 30, 40, 50, 60, 70})) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = 1;  // a single pool of the given size
      config.clients = clients;
      config.seed = bench::CellSeed(options, 6000, machines + clients);
      tasks.push_back(
          [config = std::move(config), &options, machines, clients] {
            const auto result = bench::RunCell(
                config, options, bench::ScaledSeconds(options, 3),
                bench::ScaledSeconds(options, 15));
            ScenarioCell cell;
            cell.dims.emplace_back("machines", static_cast<double>(machines));
            cell.dims.emplace_back("clients", static_cast<double>(clients));
            bench::AppendMetrics(result, &cell);
            return cell;
          });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: for each pool size the response time grows linearly "
      "with the number of clients (single-server queue, linear scan); the "
      "slope grows with pool size (scan cost per query ~ machines).";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "fig6_pool_size",
    "response time vs closed-loop clients for 800/1600/3200-machine pools",
    RunFig6);

}  // namespace
}  // namespace actyp
