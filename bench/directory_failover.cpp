// directory_failover: directory-replica crash/restore under service
// churn on a LAN. A crashed replica loses its state (journal included);
// reads and registrations fail over to a surviving replica, and the
// restored replica refills itself through anti-entropy — a full-state
// sync, since its empty version vector predates every peer's bounded
// journal. Pool-process churn keeps registrations flowing the whole
// time, so the replicas have real divergence to reconcile.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunDirectoryFailover(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "directory_failover";
  report.title = "Replica — directory failover under churn (LAN)";
  const std::size_t machines = options.machines.value_or(800);
  const std::size_t clients = options.clients.value_or(16);
  const double ts = options.time_scale;

  struct Regime {
    const char* label;
    std::uint32_t replicas;
    bool replica_churn;
  };
  const Regime regimes[] = {
      {"seed", 1, false},          // single authoritative directory
      {"replicated", 3, false},    // replication cost, no replica faults
      {"replica_churn", 3, true},  // crash/restore replicas under churn
  };

  int index = 0;
  std::vector<bench::CellTask> tasks;
  for (const Regime& regime : regimes) {
    if (options.replicas && *options.replicas != regime.replicas) continue;
    ScenarioConfig config;
    config.machines = machines;
    config.clusters = 4;
    config.clients = clients;
    config.directory_replicas = regime.replicas;
    config.directory_sync_period =
        Seconds(options.sync_period_s.value_or(0.5) * ts);
    // A deliberately tiny journal: by the time a churned replica
    // restores, the survivors' journal floors have risen past its empty
    // version vector, so the refill is a guaranteed full-state sync.
    config.directory_journal_capacity = 8;
    config.client_request_timeout = bench::ScaledSeconds(options, 2.0);
    config.retry_max = options.retry_max.value_or(1);
    config.retry_backoff = bench::ScaledSeconds(options, 0.25);
    // Pool-process churn throughout: every crash/restart is a directory
    // unregistration/re-registration the replicas must agree on.
    config.fault_plan.AddChurn(0.5 / ts, Seconds(1.5 * ts), "pool.*",
                               Seconds(2.0 * ts));
    if (regime.replica_churn) {
      config.fault_plan.AddChurn(0.4 / ts, Seconds(2.5 * ts), "replica*",
                                 Seconds(4.0 * ts));
      // One guaranteed crash of the always-preferred replica 0, so the
      // failover path is exercised under every seed (random churn may
      // only ever hit the spares).
      fault::FaultEvent crash0;
      crash0.kind = fault::FaultKind::kCrash;
      crash0.target = "replica0";
      crash0.start = Seconds(5.0 * ts);
      crash0.downtime = Seconds(2.5 * ts);
      config.fault_plan.events.push_back(crash0);
    }
    config.seed = bench::CellSeed(options, 43000,
                                  static_cast<std::uint64_t>(index) * 100 +
                                      clients);
    ++index;
    tasks.push_back([config = std::move(config), &options, regime] {
      const auto result = bench::RunCell(
          config, options, bench::ScaledSeconds(options, 3),
          bench::ScaledSeconds(options, 15));
      ScenarioCell cell;
      cell.labels.emplace_back("regime", regime.label);
      cell.dims.emplace_back("replicas",
                             static_cast<double>(regime.replicas));
      bench::AppendMetrics(result, &cell);
      bench::AppendFaultMetrics(result, &cell);
      bench::AppendReplicaMetrics(result, &cell);
      return cell;
    });
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: replica churn triggers failovers (replica 0 — the "
      "preferred LAN replica — is crashed under every seed, so reads are "
      "served by a survivor) and full_syncs (restored replicas refill "
      "via snapshot: the tiny 8-op journal guarantees the survivors' "
      "floors outrun an empty version vector) while success_rate stays "
      "close to the churn-only regime — the failover path, not the "
      "clients, absorbs the directory faults.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "directory_failover",
    "directory-replica crash/restore with failover under pool churn",
    RunDirectoryFailover);

}  // namespace
}  // namespace actyp
