// chaos_cell: one chaos trial as a registered scenario — the replay
// vehicle for chaos repro bundles (`actyp_sim --config repro.conf`).
// A bundle pins the seed, the workload regime (`regime = ...` line),
// the fault plan ([fault] section), the time scale, and the quiesce
// floor; the cell re-runs chaos::RunTrial under exactly those inputs
// and reports the violation count plus a digest note, so a violation
// found by actyp_chaos replays byte-identically here.
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "chaos/trial.hpp"
#include "chaos/workload_regime.hpp"

namespace actyp {
namespace {

ScenarioReport RunChaosCell(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "chaos_cell";
  report.title = "Chaos — single trial replay (regime x fault plan x seed)";

  chaos::ChaosTrial trial;
  trial.seed = options.seed.value_or(20010611);
  if (!options.regime_text.empty()) {
    const auto regime = chaos::WorkloadRegime::Parse(options.regime_text);
    if (!regime.ok()) {
      report.note = "bad regime: " + regime.status().ToString();
      return report;
    }
    trial.regime = regime.value();
  }
  if (options.machines) trial.regime.machines = *options.machines;
  if (options.clients) trial.regime.clients = *options.clients;
  if (!options.fault_plan_text.empty()) {
    auto plan = fault::FaultPlan::Parse(options.fault_plan_text);
    if (!plan.ok()) {
      report.note = "bad fault plan: " + plan.status().ToString();
      return report;
    }
    trial.plan = std::move(plan.value());
  }

  chaos::TrialParams params;
  params.time_scale = options.time_scale;
  params.quiesce_floor_s = options.quiesce_s;

  const chaos::TrialOutcome outcome = chaos::RunTrial(trial, params);

  ScenarioCell cell;
  cell.labels.emplace_back("seed", std::to_string(trial.seed));
  cell.dims.emplace_back("events",
                         static_cast<double>(trial.plan.events.size()));
  cell.metrics.emplace_back("mean_s", outcome.mean_s);
  cell.metrics.emplace_back("p50_s", outcome.p50_s);
  cell.metrics.emplace_back("p95_s", outcome.p95_s);
  cell.metrics.emplace_back("completed",
                            static_cast<double>(outcome.completed));
  cell.metrics.emplace_back("failures",
                            static_cast<double>(outcome.failures));
  cell.metrics.emplace_back("success_rate", outcome.success_rate);
  cell.metrics.emplace_back("lost", static_cast<double>(outcome.lost));
  cell.metrics.emplace_back("retries",
                            static_cast<double>(outcome.retries));
  cell.metrics.emplace_back("violations",
                            static_cast<double>(outcome.violations.size()));
  report.cells.push_back(std::move(cell));
  report.note = outcome.violations.empty()
                    ? "no invariant violations"
                    : chaos::FormatViolations(outcome.violations);
  return report;
}

const ScenarioRegistrar kRegistrar(
    "chaos_cell",
    "Replay one chaos trial (seed + regime + fault plan) with invariants",
    RunChaosCell);

}  // namespace
}  // namespace actyp
