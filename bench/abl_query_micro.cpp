// Ablation: query-language microbenchmarks (google-benchmark). The
// pipeline's per-stage costs assume parsing, signature construction, and
// decomposition are microsecond-scale; this bench verifies that and
// tracks regressions.
#include <benchmark/benchmark.h>

#include "common/strings.hpp"
#include "net/message.hpp"
#include "query/parser.hpp"

namespace {

constexpr const char* kPaperQuery =
    "punch.rsrc.arch = sun\n"
    "punch.rsrc.memory = >=10\n"
    "punch.rsrc.license = tsuprem4\n"
    "punch.rsrc.domain = purdue\n"
    "punch.appl.expectedcpuuse = 1000\n"
    "punch.user.login = kapadia\n"
    "punch.user.accessgroup = ece\n";

void BM_ParseBasic(benchmark::State& state) {
  for (auto _ : state) {
    auto q = actyp::query::Parser::ParseBasic(kPaperQuery);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseBasic);

void BM_Signature(benchmark::State& state) {
  auto q = actyp::query::Parser::ParseBasic(kPaperQuery);
  for (auto _ : state) {
    auto name = q->PoolName();
    benchmark::DoNotOptimize(name);
  }
}
BENCHMARK(BM_Signature);

void BM_DecomposeComposite(benchmark::State& state) {
  const std::string text =
      "punch.rsrc.arch = sun|hp|sgi|linux\n"
      "punch.rsrc.memory = >=10|>=100\n"
      "punch.user.login = kapadia\n";
  for (auto _ : state) {
    auto composite = actyp::query::Parser::Parse(text);
    benchmark::DoNotOptimize(composite);
  }
}
BENCHMARK(BM_DecomposeComposite);

void BM_QueryToText(benchmark::State& state) {
  auto q = actyp::query::Parser::ParseBasic(kPaperQuery);
  for (auto _ : state) {
    auto text = q->ToText();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_QueryToText);

void BM_Match(benchmark::State& state) {
  auto q = actyp::query::Parser::ParseBasic(kPaperQuery);
  auto attrs = [](const std::string& name) -> std::optional<std::string> {
    if (name == "arch") return "sun";
    if (name == "memory") return "512";
    if (name == "license") return "tsuprem4";
    if (name == "domain") return "purdue";
    return std::nullopt;
  };
  for (auto _ : state) {
    bool matches = q->Matches(attrs);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_Match);

void BM_MessageEncodeDecode(benchmark::State& state) {
  actyp::net::Message m{"query"};
  m.SetHeader("reply-to", "client1");
  m.SetHeader("request-id", "123456");
  m.body = kPaperQuery;
  for (auto _ : state) {
    auto round = actyp::net::Message::Decode(m.Encode());
    benchmark::DoNotOptimize(round);
  }
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_GlobMatch(benchmark::State& state) {
  for (auto _ : state) {
    bool match = actyp::GlobMatch("sparc*ultra-?", "sparc-iii-ultra-5");
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_GlobMatch);

}  // namespace

BENCHMARK_MAIN();
