// Ablation: query-language microbenchmarks. The pipeline's per-stage
// costs assume parsing, signature construction, and decomposition are
// microsecond-scale; this scenario verifies that and tracks regressions
// with simple wall-clock timing loops (self-calibrating iteration
// counts, no external benchmark dependency). Deliberately ignores
// --jobs: concurrent cells would contend for cores and corrupt the
// timings.
#include <chrono>
#include <string>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "net/message.hpp"
#include "query/parser.hpp"

namespace actyp {
namespace {

constexpr const char* kPaperQuery =
    "punch.rsrc.arch = sun\n"
    "punch.rsrc.memory = >=10\n"
    "punch.rsrc.license = tsuprem4\n"
    "punch.rsrc.domain = purdue\n"
    "punch.appl.expectedcpuuse = 1000\n"
    "punch.user.login = kapadia\n"
    "punch.user.accessgroup = ece\n";

// Keeps `value` observable so the timed bodies are not optimized away.
template <typename T>
inline void DoNotOptimize(const T& value) {
  asm volatile("" : : "g"(value) : "memory");
}

// Times `op` with enough iterations to pass a minimum wall-clock
// budget; returns {ns_per_op, iterations}. Template on the callable so
// the timed body inlines — a std::function indirection would add
// non-inlinable dispatch overhead comparable to the cheapest ops.
template <typename Op>
std::pair<double, double> TimeOp(Op&& op, double min_seconds) {
  using Clock = std::chrono::steady_clock;
  std::uint64_t iterations = 64;
  for (;;) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) op();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= min_seconds || iterations >= (1ULL << 24)) {
      return {elapsed * 1e9 / static_cast<double>(iterations),
              static_cast<double>(iterations)};
    }
    iterations *= 4;
  }
}

ScenarioReport RunAblQueryMicro(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "abl_query_micro";
  report.title = "Ablation — query-language microbenchmarks";

  // --time-scale shrinks/stretches the per-op timing budget.
  const double min_seconds = 0.05 * options.time_scale;

  const auto parsed = query::Parser::ParseBasic(kPaperQuery);
  const std::string composite_text =
      "punch.rsrc.arch = sun|hp|sgi|linux\n"
      "punch.rsrc.memory = >=10|>=100\n"
      "punch.user.login = kapadia\n";
  net::Message message{"query"};
  message.SetHeader("reply-to", "client1");
  message.SetHeader("request-id", "123456");
  message.body = kPaperQuery;
  const auto attrs =
      [](const std::string& name) -> std::optional<std::string> {
    if (name == "arch") return "sun";
    if (name == "memory") return "512";
    if (name == "license") return "tsuprem4";
    if (name == "domain") return "purdue";
    return std::nullopt;
  };

  const auto measure = [&](const char* name, auto&& op) {
    const auto [ns_per_op, iterations] = TimeOp(op, min_seconds);
    ScenarioCell cell;
    cell.labels.emplace_back("op", name);
    cell.metrics.emplace_back("ns_per_op", ns_per_op);
    cell.metrics.emplace_back("iterations", iterations);
    report.cells.push_back(std::move(cell));
  };
  measure("parse_basic",
          [&] { DoNotOptimize(query::Parser::ParseBasic(kPaperQuery)); });
  measure("pool_signature", [&] { DoNotOptimize(parsed->PoolName()); });
  measure("decompose_composite",
          [&] { DoNotOptimize(query::Parser::Parse(composite_text)); });
  measure("query_to_text", [&] { DoNotOptimize(parsed->ToText()); });
  measure("match", [&] { DoNotOptimize(parsed->Matches(attrs)); });
  measure("message_encode_decode",
          [&] { DoNotOptimize(net::Message::Decode(message.Encode())); });
  measure("glob_match", [&] {
    DoNotOptimize(GlobMatch("sparc*ultra-?", "sparc-iii-ultra-5"));
  });

  report.note =
      "shape check: every operation is microsecond-scale or below, "
      "consistent with the per-stage costs the pipeline's cost model "
      "assumes.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "abl_query_micro",
    "wall-clock microbenchmarks of parse/signature/decompose/match",
    RunAblQueryMicro, /*wall_clock=*/true);

}  // namespace
}  // namespace actyp
