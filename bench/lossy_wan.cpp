// lossy_wan: the Fig. 5 WAN deployment (clients at Purdue, service at
// UPC, ~60 ms RTT) under message loss — the regime the paper's
// LAN-and-WAN pool evaluation implies but never measures. The loss=0
// row reproduces the fig5_pools_wan conditions at 4 pools, so running
// both scenarios in one invocation shows the degradation directly: the
// WAN run pays both the RTT floor *and* a (1-p)^4 success-rate decay,
// and every timeout costs a 5 s client give-up instead of a LAN-fast
// failure reply.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunLossyWan(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "lossy_wan";
  report.title =
      "Fault — message loss across a ~60ms-RTT WAN, 4 pools, 3200 machines";
  const std::size_t machines = options.machines.value_or(3200);
  std::vector<bench::CellTask> tasks;
  for (const std::size_t clients : bench::SweepOr(options.clients, {16})) {
    int index = 0;
    for (const double loss : {0.0, 0.01, 0.05, 0.10, 0.20}) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = 4;
      config.clients = clients;
      config.wan = true;
      config.client_request_timeout = bench::ScaledSeconds(options, 5.0);
      if (loss > 0) config.fault_plan.AddLossWindow(loss);
      config.seed = bench::CellSeed(options, 9200,
                                    static_cast<std::uint64_t>(index) * 100 +
                                        clients);
      ++index;
      tasks.push_back([config = std::move(config), &options, loss, clients] {
        const auto result =
            bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                           bench::ScaledSeconds(options, 15));
        ScenarioCell cell;
        cell.dims.emplace_back("loss", loss);
        cell.dims.emplace_back("clients", static_cast<double>(clients));
        bench::AppendMetrics(result, &cell);
        bench::AppendFaultMetrics(result, &cell);
        return cell;
      });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: the loss=0 row matches fig5_pools_wan at 4 pools; as p "
      "rises the success rate decays like (1-p)^4 and mean response climbs "
      "because every lost leg costs a 5s give-up timer on top of the WAN "
      "RTT floor.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "lossy_wan",
    "Fig. 5 WAN deployment under swept message-loss rates",
    RunLossyWan);

}  // namespace
}  // namespace actyp
