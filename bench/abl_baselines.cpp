// Ablation: the ActYP pipeline vs the centralized-scheduler and
// Condor-style matchmaker baselines (§8). Same 3,200-machine fleet, same
// per-machine scan cost, same closed-loop clients — the differences are
// purely architectural: decentralized pools vs one scan of the whole
// database per query vs batched negotiation cycles.
#include <memory>
#include <string>
#include <vector>

#include "baseline/central.hpp"
#include "baseline/matchmaker.hpp"
#include "bench_common.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"
#include "workload/client.hpp"
#include "workload/generator.hpp"

namespace actyp {
namespace {

// Assembles fleet + baseline scheduler + clients on the standard
// topology and measures client response time.
bench::CellResult RunBaseline(const std::string& kind, std::size_t machines,
                              std::size_t clients, std::uint64_t seed,
                              double time_scale) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), seed);
  network.AddHost("alpha", 12);
  network.AddHost("clients", static_cast<int>(clients));

  db::ResourceDatabase database;
  Rng rng(seed);
  workload::FleetSpec fleet;
  fleet.machine_count = machines;
  fleet.cluster_count = 4;
  BuildFleet(fleet, rng, &database, nullptr);

  net::Address entry = "sched";
  std::shared_ptr<baseline::CentralScheduler> central;
  std::shared_ptr<baseline::Matchmaker> matchmaker;
  if (kind == "central") {
    central = std::make_shared<baseline::CentralScheduler>(
        baseline::CentralSchedulerConfig{}, &database);
    network.AddNode("sched", central, {"alpha", 1});
  } else {
    baseline::MatchmakerConfig config;
    config.cycle_period = Seconds(5.0);
    matchmaker = std::make_shared<baseline::Matchmaker>(config, &database);
    network.AddNode("sched", matchmaker, {"alpha", 1});
  }

  workload::QuerySpec query_spec;
  query_spec.cluster_count = 4;
  workload::QueryGenerator generator(query_spec);
  workload::ResponseCollector collector;
  std::vector<std::shared_ptr<workload::ClientNode>> client_nodes;
  for (std::size_t i = 0; i < clients; ++i) {
    workload::ClientConfig config;
    config.client_id = static_cast<std::uint32_t>(i + 1);
    config.entry = entry;
    config.make_query = [generator](Rng& r) { return generator.Next(r); };
    config.collector = &collector;
    auto client = std::make_shared<workload::ClientNode>(config);
    client_nodes.push_back(client);
    network.AddNode("client" + std::to_string(i), client, {"clients", 1});
  }

  kernel.RunUntil(Seconds(3 * time_scale));
  collector.Reset();
  kernel.RunUntil(Seconds(18 * time_scale));

  bench::CellResult result;
  result.mean_s = collector.response_stats().mean();
  result.p50_s = collector.QuantileSeconds(0.5);
  result.p95_s = collector.QuantileSeconds(0.95);
  result.completed = collector.completed();
  result.failures = collector.failures();
  // Journal-fed scan-cache refresh work (see baseline::ScanCache): far
  // below completed * fleet once the mirror is primed.
  result.entries_refreshed = central != nullptr
                                 ? central->stats().entries_refreshed
                                 : matchmaker->stats().entries_refreshed;
  return result;
}

ScenarioReport RunAblBaselines(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "abl_baselines";
  report.title = "Ablation — ActYP pipeline vs centralized baselines";
  const std::size_t machines = options.machines.value_or(3200);
  std::vector<bench::CellTask> tasks;
  for (const std::size_t clients :
       bench::SweepOr(options.clients, {8, 32, 64})) {
    {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = 4;
      config.clients = clients;
      config.seed = bench::CellSeed(options, 100, clients);
      tasks.push_back([config = std::move(config), &options, clients] {
        const auto result =
            bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                           bench::ScaledSeconds(options, 15));
        ScenarioCell cell;
        cell.labels.emplace_back("system", "actyp");
        cell.dims.emplace_back("clients", static_cast<double>(clients));
        bench::AppendMetrics(result, &cell);
        return cell;
      });
    }
    for (const char* kind : {"central", "matchmaker"}) {
      tasks.push_back([kind, machines, clients, &options] {
        const auto result =
            RunBaseline(kind, machines, clients,
                        bench::CellSeed(options, 200, clients),
                        options.time_scale);
        ScenarioCell cell;
        cell.labels.emplace_back("system", kind);
        cell.dims.emplace_back("clients", static_cast<double>(clients));
        bench::AppendMetrics(result, &cell);
        cell.metrics.emplace_back(
            "entries_refreshed",
            static_cast<double>(result.entries_refreshed));
        return cell;
      });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: ActYP's pooled, decentralized scan beats the "
      "centralized full-database scan as clients grow, and beats the "
      "matchmaker's negotiation-cycle latency floor (>= one 5s cycle for "
      "closed-loop clients) by orders of magnitude for the short jobs "
      "PUNCH serves.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "abl_baselines",
    "ActYP pipeline vs centralized scheduler and matchmaker baselines",
    RunAblBaselines);

}  // namespace
}  // namespace actyp
