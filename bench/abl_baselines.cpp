// Ablation: the ActYP pipeline vs the centralized-scheduler and
// Condor-style matchmaker baselines (§8). Same 3,200-machine fleet, same
// per-machine scan cost, same closed-loop clients — the differences are
// purely architectural: decentralized pools vs one scan of the whole
// database per query vs batched negotiation cycles.
#include <cstdio>

#include "baseline/central.hpp"
#include "baseline/matchmaker.hpp"
#include "bench_common.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"
#include "workload/client.hpp"
#include "workload/generator.hpp"

namespace {

using namespace actyp;

// Assembles fleet + baseline scheduler + clients on the standard
// topology and measures client response time.
bench::CellResult RunBaseline(const std::string& kind, std::size_t machines,
                              std::size_t clients, std::uint64_t seed) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), seed);
  network.AddHost("alpha", 12);
  network.AddHost("clients", static_cast<int>(clients));

  db::ResourceDatabase database;
  Rng rng(seed);
  workload::FleetSpec fleet;
  fleet.machine_count = machines;
  fleet.cluster_count = 4;
  BuildFleet(fleet, rng, &database, nullptr);

  net::Address entry;
  std::shared_ptr<baseline::CentralScheduler> central;
  std::shared_ptr<baseline::Matchmaker> matchmaker;
  if (kind == "central") {
    central = std::make_shared<baseline::CentralScheduler>(
        baseline::CentralSchedulerConfig{}, &database);
    network.AddNode("sched", central, {"alpha", 1});
    entry = "sched";
  } else {
    baseline::MatchmakerConfig config;
    config.cycle_period = Seconds(5.0);
    matchmaker = std::make_shared<baseline::Matchmaker>(config, &database);
    network.AddNode("sched", matchmaker, {"alpha", 1});
    entry = "sched";
  }

  workload::QuerySpec query_spec;
  query_spec.cluster_count = 4;
  workload::QueryGenerator generator(query_spec);
  workload::ResponseCollector collector;
  std::vector<std::shared_ptr<workload::ClientNode>> client_nodes;
  for (std::size_t i = 0; i < clients; ++i) {
    workload::ClientConfig config;
    config.client_id = static_cast<std::uint32_t>(i + 1);
    config.entry = entry;
    config.make_query = [generator](Rng& r) { return generator.Next(r); };
    config.collector = &collector;
    auto client = std::make_shared<workload::ClientNode>(config);
    client_nodes.push_back(client);
    network.AddNode("client" + std::to_string(i), client, {"clients", 1});
  }

  kernel.RunUntil(Seconds(3));
  collector.Reset();
  kernel.RunUntil(Seconds(18));

  bench::CellResult result;
  result.mean_s = collector.response_stats().mean();
  result.p50_s = collector.QuantileSeconds(0.5);
  result.p95_s = collector.QuantileSeconds(0.95);
  result.completed = collector.completed();
  result.failures = collector.failures();
  return result;
}

}  // namespace

int main() {
  std::printf("== Ablation — ActYP pipeline vs centralized baselines ==\n");
  std::printf("%12s %8s %12s %12s %12s %10s\n", "system", "clients", "mean(s)",
              "p50(s)", "p95(s)", "queries");
  for (const std::size_t clients : {8, 32, 64}) {
    {
      ScenarioConfig config;
      config.machines = 3200;
      config.clusters = 4;
      config.clients = clients;
      config.seed = 100 + clients;
      const auto r = bench::RunCell(config);
      std::printf("%12s %8zu %12.4f %12.4f %12.4f %10llu\n", "actyp", clients,
                  r.mean_s, r.p50_s, r.p95_s,
                  static_cast<unsigned long long>(r.completed));
    }
    for (const char* kind : {"central", "matchmaker"}) {
      const auto r = RunBaseline(kind, 3200, clients, 200 + clients);
      std::printf("%12s %8zu %12.4f %12.4f %12.4f %10llu\n", kind, clients,
                  r.mean_s, r.p50_s, r.p95_s,
                  static_cast<unsigned long long>(r.completed));
    }
  }
  std::printf(
      "\nshape check: ActYP's pooled, decentralized scan beats the\n"
      "centralized full-database scan as clients grow, and beats the\n"
      "matchmaker's negotiation-cycle latency floor (>= one 5s cycle for\n"
      "closed-loop clients) by orders of magnitude for the short jobs\n"
      "PUNCH serves.\n");
  return 0;
}
