// pool_churn: precreated pools under churn. Two fault regimes against
// the same 4-pool LAN deployment:
//   - machine churn: the injector crashes one random up machine per
//     tick (white pages flips to Down, the owning pool benches it on
//     its next refresh sweep and restores it after the downtime);
//   - pool-process churn: the injector crashes a random precreated
//     pool node (directory unregistration + claim handling included)
//     and restarts a fresh instance after the downtime, which re-adopts
//     or re-claims its machine set — the §5.2.3 lifecycle under faults.
// Queries that race a dead pool fail fast at the pool manager or burn
// the client's give-up timer, so success rate degrades with rate.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunPoolChurn(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "pool_churn";
  report.title = "Fault — machine & pool-process churn, 4 pools (LAN)";
  const std::size_t machines = options.machines.value_or(1600);
  const std::size_t clients = options.clients.value_or(16);

  struct Regime {
    const char* label;
    const char* target;
    double rate;      // crashes per simulated second
    double downtime;  // seconds a victim stays down
  };
  const Regime regimes[] = {
      {"none", "machines", 0.0, 0.0},
      {"machines", "machines", 0.5, 5.0},
      {"machines", "machines", 2.0, 5.0},
      {"machines", "machines", 5.0, 5.0},
      {"pools", "pool.*", 0.2, 3.0},
      {"pools", "pool.*", 1.0, 3.0},
  };

  int index = 0;
  std::vector<bench::CellTask> tasks;
  for (const Regime& regime : regimes) {
    ScenarioConfig config;
    config.machines = machines;
    config.clusters = 4;
    config.clients = clients;
    config.client_request_timeout = bench::ScaledSeconds(options, 2.0);
    if (regime.rate > 0) {
      config.fault_plan.AddChurn(regime.rate, Seconds(regime.downtime),
                                 regime.target);
    }
    config.seed = bench::CellSeed(options, 9300,
                                  static_cast<std::uint64_t>(index) * 100 +
                                      clients);
    ++index;
    tasks.push_back([config = std::move(config), &options, regime] {
      const auto result =
          bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                         bench::ScaledSeconds(options, 15));
      ScenarioCell cell;
      cell.labels.emplace_back("churn", regime.label);
      cell.dims.emplace_back("rate", regime.rate);
      bench::AppendMetrics(result, &cell);
      bench::AppendFaultMetrics(result, &cell);
      cell.metrics.emplace_back("machines_crashed",
                                static_cast<double>(result.machines_crashed));
      cell.metrics.emplace_back("services_crashed",
                                static_cast<double>(result.services_crashed));
      return cell;
    });
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: machine churn barely moves the needle (pools bench the "
      "down machine and pick another of the ~400 per pool), while pool-"
      "process churn costs real failures during each instance's downtime — "
      "success rate falls as churn rate rises.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "pool_churn",
    "machine and pool-process churn against precreated pools",
    RunPoolChurn);

}  // namespace
}  // namespace actyp
