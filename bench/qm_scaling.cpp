// Multi-QM scaling sweep (beyond the paper): the 2001 prototype ran a
// single query manager; ScenarioConfig has always modelled N of them,
// but no experiment swept the dimension. This scenario grows the
// query-manager tier against a fixed 4-pool fleet under the *indexed*
// least-load policy, so the entry stage — not the pools' O(n) scan —
// is the bottleneck being scaled. Composes with --loss / --churn-rate /
// --fault-plan like every scenario; sel_cost reports entries examined
// per allocation (the indexed policy's asymptotic win over Fig. 6's
// linear search) and ev_per_s_wall the host-side event throughput.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunQmScaling(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "qm_scaling";
  report.title =
      "QM scaling — query managers vs response time, indexed least-load";
  const std::size_t machines = options.machines.value_or(1600);
  std::vector<bench::CellTask> tasks;
  for (const std::size_t clients :
       bench::SweepOr(options.clients, {16, 64})) {
    for (const std::size_t qms : {1, 2, 4, 8}) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = 4;
      config.query_managers = qms;
      config.pool_managers = 2;
      config.clients = clients;
      config.policy = "least-load";  // the indexed fast path
      config.seed = bench::CellSeed(options, 210000, qms * 1000 + clients);
      tasks.push_back([config = std::move(config), &options, qms, clients] {
        const auto result =
            bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                           bench::ScaledSeconds(options, 15));
        ScenarioCell cell;
        cell.dims.emplace_back("qms", static_cast<double>(qms));
        cell.dims.emplace_back("clients", static_cast<double>(clients));
        bench::AppendMetrics(result, &cell);
        bench::AppendEngineMetrics(result, options, &cell);
        return cell;
      });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: with the indexed policy sel_cost stays O(1)-flat "
      "(a few entries per allocation, vs ~machines/pools for linear-*), "
      "and adding query managers keeps response flat or better while the "
      "64-client curve improves until the pool/PM tiers saturate.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "qm_scaling",
    "query-manager tier scaling under the indexed least-load policy",
    RunQmScaling);

}  // namespace
}  // namespace actyp
