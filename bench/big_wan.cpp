// big_wan: the LP-parallel flagship — an 8-site WAN deployment an
// order of magnitude beyond the paper's fleets (40,000 machines vs
// Fig. 4's 3,200), built with ScenarioConfig::wan_sites so the sites
// run as logical processes under the conservative-window engine.
// Every site owns 4 of the 32 clusters and a full service stack;
// clients stripe queries across the whole cluster space, so 7/8 of
// requests cross the WAN and exercise the inter-LP mailboxes.
//
// This is the perf-smoke scenario for --cell-jobs: the report is
// byte-identical for any worker count (sharding is fixed by wan_sites,
// not by --cell-jobs), while wall clock drops as workers are added —
// CI asserts the serial-vs-4-workers speedup on exactly this scenario.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunBigWan(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "big_wan";
  report.title =
      "big WAN — 8-site LP-parallel deployment, 40k machines, "
      "linear least-load";
  const std::size_t machines = options.machines.value_or(40000);
  const std::size_t clients = options.clients.value_or(96);
  std::vector<bench::CellTask> tasks;
  ScenarioConfig config;
  config.machines = machines;
  config.clusters = 32;
  config.wan_sites = 8;
  config.query_managers = 2;  // per site
  config.pool_managers = 2;   // per site
  config.clients = clients;
  config.policy = "linear-least-load";
  config.seed = bench::CellSeed(options, 910000, 0);
  tasks.push_back([config = std::move(config), &options, machines, clients] {
    const auto result =
        bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                       bench::ScaledSeconds(options, 15));
    ScenarioCell cell;
    cell.dims.emplace_back("sites", 8.0);
    cell.dims.emplace_back("machines", static_cast<double>(machines));
    cell.dims.emplace_back("clients", static_cast<double>(clients));
    bench::AppendMetrics(result, &cell);
    bench::AppendEngineMetrics(result, options, &cell);
    return cell;
  });
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: completed > 0 with failures 0 on the healthy "
      "network; the report (and --trace-out) is byte-identical for any "
      "--cell-jobs value, and wall clock scales down with workers "
      "(ev_per_s_wall up) until the 8 LPs are saturated.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "big_wan",
    "8-site LP-parallel WAN deployment, 40k machines (use --cell-jobs N)",
    RunBigWan);

}  // namespace
}  // namespace actyp
