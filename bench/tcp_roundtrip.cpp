// tcp_roundtrip: end-to-end exercise of the real TCP transport
// (src/net/tcp.cpp) through the scenario driver. The pipeline stages
// run on the threaded in-process transport; the query-manager entry is
// fronted by a loopback TcpServer speaking the production wire format
// (4-byte frame + encoded Message), and the scenario issues real socket
// calls against it. Latency numbers are wall-clock (this is the one
// scenario that is not a discrete-event simulation), so --jobs is
// deliberately ignored here; the call/success counters are
// deterministic and are what perf tracking diffs.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "pipeline/pool_manager.hpp"
#include "pipeline/proxy.hpp"
#include "pipeline/query_manager.hpp"
#include "workload/generator.hpp"

namespace actyp {
namespace {

// Bridges the synchronous TCP handler onto the asynchronous pipeline:
// replies land here by request id and wake the waiting handler.
class Gateway final : public net::Node {
 public:
  void OnMessage(const net::Envelope& envelope, net::NodeContext&) override {
    std::lock_guard<std::mutex> lock(mu_);
    replies_[envelope.message.Header(net::hdr::kRequestId)] =
        envelope.message;
    cv_.notify_all();
  }

  net::Message Await(const std::string& request_id) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, std::chrono::seconds(5), [&] {
          return replies_.count(request_id) > 0;
        })) {
      net::Message timeout{net::msg::kFailure};
      timeout.SetHeader(net::hdr::kError, "gateway timeout");
      return timeout;
    }
    net::Message reply = replies_.at(request_id);
    replies_.erase(request_id);
    return reply;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, net::Message> replies_;
};

ScenarioReport RunTcpRoundtrip(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "tcp_roundtrip";
  report.title = "TCP transport — loopback roundtrips through the pipeline";

  // --- substrate ---
  db::ResourceDatabase database;
  db::ShadowAccountRegistry shadows;
  db::PolicyRegistry policies;
  directory::DirectoryService directory;
  Rng rng(options.seed.value_or(411));
  workload::FleetSpec fleet;
  fleet.machine_count = options.machines.value_or(64);
  fleet.cluster_count = 2;
  BuildFleet(fleet, rng, &database, &shadows);

  // --- pipeline on the threaded transport, pools created on demand ---
  net::InProcNetwork network;
  pipeline::ProxyConfig proxy_config;
  network.AddNode("proxy",
                  std::make_shared<pipeline::ProxyServer>(
                      proxy_config, &network, &database, &directory, &shadows,
                      &policies),
                  {});
  pipeline::PoolManagerConfig pm_config;
  pm_config.name = "pm0";
  pm_config.proxies = {"proxy"};
  network.AddNode("pm0",
                  std::make_shared<pipeline::PoolManager>(pm_config,
                                                          &directory),
                  {});
  pipeline::QueryManagerConfig qm_config;
  qm_config.name = "qm0";
  qm_config.default_pool_managers = {"pm0"};
  network.AddNode("qm0", std::make_shared<pipeline::QueryManager>(qm_config),
                  {});
  auto gateway = std::make_shared<Gateway>();
  network.AddNode("gateway", gateway, {});

  // --- TCP frontend on an ephemeral loopback port ---
  net::TcpServer server;
  // Fault injection at the socket layer: every 5th reply in the second
  // (faulty) phase is dropped — alternating a hard connection reset and
  // a truncated frame — and the retrying client must still land every
  // call. Installed before Start (the hook contract): the counters are
  // atomic because the hook runs on connection threads.
  std::atomic<int> reply_counter{0};
  std::atomic<bool> faults_on{false};
  server.SetFaultHook([&reply_counter, &faults_on]() -> net::TcpFault {
    if (!faults_on.load()) return {};
    const int n = reply_counter.fetch_add(1);
    if (n % 5 != 4) return {};
    net::TcpFault fault;
    fault.action = (n / 5) % 2 == 0 ? net::TcpFault::Action::kReset
                                    : net::TcpFault::Action::kTruncate;
    fault.bytes = 3;
    return fault;
  });
  std::mutex request_mu;
  int next_request = 0;
  const Status started =
      server.Start(0, [&](const net::Message& request) {
        std::string request_id;
        {
          std::lock_guard<std::mutex> lock(request_mu);
          request_id = std::to_string(++next_request);
        }
        net::Message query = request;
        query.SetHeader(net::hdr::kRequestId, request_id);
        query.SetHeader(net::hdr::kReplyTo, "gateway");
        network.Post("gateway", "qm0", std::move(query));
        return gateway->Await(request_id);
      });

  const std::size_t calls = std::max<std::size_t>(
      4, static_cast<std::size_t>(40.0 * options.time_scale));
  struct Phase {
    const char* label;
    bool faulty;
  };
  const Phase phases[] = {{"clean", false}, {"reset", true}};
  workload::QuerySpec query_spec;
  query_spec.cluster_count = 2;
  workload::QueryGenerator generator(query_spec);
  for (const Phase& phase : phases) {
    faults_on.store(phase.faulty);
    std::uint64_t ok = 0;
    std::uint64_t failures = 0;
    RunningStats latency_ms;
    if (started.ok()) {
      for (std::size_t i = 0; i < calls; ++i) {
        net::Message request{net::msg::kQuery};
        request.body = generator.Next(rng);
        const auto begin = std::chrono::steady_clock::now();
        // The faulty phase survives one reset/truncation per call via
        // the retrying client; the clean phase uses single-shot calls.
        const auto reply =
            phase.faulty
                ? net::TcpClient::CallWithRetry("127.0.0.1", server.port(),
                                                request, 2)
                : net::TcpClient::Call("127.0.0.1", server.port(), request);
        const auto end = std::chrono::steady_clock::now();
        if (reply.ok() && reply->type == net::msg::kAllocation) {
          ++ok;
          latency_ms.Add(
              std::chrono::duration<double, std::milli>(end - begin).count());
        } else {
          ++failures;
        }
      }
    }
    ScenarioCell cell;
    cell.labels.emplace_back("mode", phase.label);
    cell.dims.emplace_back("calls", static_cast<double>(calls));
    cell.metrics.emplace_back("ok", static_cast<double>(ok));
    cell.metrics.emplace_back("failures",
                              static_cast<double>(failures +
                                                  (started.ok() ? 0 : calls)));
    cell.metrics.emplace_back("mean_ms", latency_ms.mean());
    cell.metrics.emplace_back("max_ms", latency_ms.max());
    report.cells.push_back(std::move(cell));
  }
  if (started.ok()) server.Stop();
  network.Shutdown();

  report.note =
      "every call crosses a real loopback socket into the threaded "
      "pipeline and back; ok == calls is the invariant for both modes — "
      "the reset mode injects connection resets and partial frames at "
      "the socket layer and the retrying client absorbs them (latencies "
      "are wall-clock and excluded from deterministic perf diffs).";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "tcp_roundtrip",
    "real TCP loopback roundtrips through the threaded pipeline",
    RunTcpRoundtrip, /*wall_clock=*/true);

}  // namespace
}  // namespace actyp
