// Figure 9: distribution of measured CPU times for 236,222 PUNCH runs.
// The paper's histogram is truncated at 1,000 s on the X axis and at its
// 19,756-run peak on the Y axis; observed CPU times extend beyond 1e6 s.
// This bench draws the same number of samples from the synthetic mixture
// and prints the truncated histogram plus the tail summary.
#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "workload/cpu_time.hpp"

int main() {
  using namespace actyp;
  constexpr int kRuns = 236222;  // the paper's sample count

  workload::CpuTimeModel model;
  Rng rng(20010609);
  Histogram histogram(0, 1000, 100);  // 10-second buckets, as in Fig. 9
  RunningStats stats;
  QuantileSampler quantiles(1 << 17);
  double max_seen = 0;
  std::uint64_t beyond_1000 = 0, beyond_1e6 = 0;

  for (int i = 0; i < kRuns; ++i) {
    const double seconds = model.Sample(rng);
    histogram.Add(seconds);
    stats.Add(seconds);
    quantiles.Add(seconds);
    max_seen = std::max(max_seen, seconds);
    beyond_1000 += (seconds > 1000.0);
    beyond_1e6 += (seconds > 1e6);
  }

  std::printf("== Fig. 9 — CPU-time distribution of %d synthetic runs ==\n",
              kRuns);
  std::printf("(X truncated at 1000 s as in the paper; first 20 buckets)\n\n");
  // Print the head of the histogram where the action is.
  const std::uint64_t peak = histogram.max_bucket_count();
  for (std::size_t b = 0; b < 20; ++b) {
    const auto count = histogram.bucket(b);
    const int bar = static_cast<int>(count * 50 / std::max<std::uint64_t>(1, peak));
    std::printf("[%6.0f,%6.0f) %8llu |%.*s\n", histogram.bucket_lo(b),
                histogram.bucket_hi(b), static_cast<unsigned long long>(count),
                bar,
                "##################################################");
  }

  std::printf("\npeak bucket count : %llu (paper's Y truncation: 19,756)\n",
              static_cast<unsigned long long>(peak));
  std::printf("median            : %.1f s\n", quantiles.Quantile(0.5));
  std::printf("p90 / p99         : %.1f / %.1f s\n", quantiles.Quantile(0.9),
              quantiles.Quantile(0.99));
  std::printf("runs > 1000 s     : %llu (%.2f%%, beyond the paper's X axis)\n",
              static_cast<unsigned long long>(beyond_1000),
              100.0 * static_cast<double>(beyond_1000) / kRuns);
  std::printf("runs > 1e6 s      : %llu\n",
              static_cast<unsigned long long>(beyond_1e6));
  std::printf("max observed      : %.3g s (paper: 'more than 1e6 seconds')\n",
              max_seen);
  std::printf(
      "\nshape check: mode in the first bucket (a few seconds), monotone\n"
      "decay over the truncated axis, and a heavy tail past 1e6 s.\n");
  return 0;
}
