// Figure 9: distribution of measured CPU times for 236,222 PUNCH runs.
// The paper's histogram is truncated at 1,000 s on the X axis and at its
// 19,756-run peak on the Y axis; observed CPU times extend beyond 1e6 s.
// This scenario draws the same number of samples from the synthetic
// mixture and reports the truncated histogram plus the tail summary.
// One sequential sampling pass feeding every cell — nothing for --jobs
// to parallelize.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "workload/cpu_time.hpp"

namespace actyp {
namespace {

constexpr int kPaperRuns = 236222;  // the paper's sample count

ScenarioReport RunFig9(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "fig9_workload";
  report.title = "Fig. 9 — CPU-time distribution of synthetic PUNCH runs";

  // Clamp in the double domain: a huge --time-scale must not overflow
  // the int conversion (UB).
  const int runs = static_cast<int>(
      std::clamp(kPaperRuns * options.time_scale, 1000.0, 1e8));
  workload::CpuTimeModel model;
  Rng rng(options.seed.value_or(20010609));
  Histogram histogram(0, 1000, 100);  // 10-second buckets, as in Fig. 9
  RunningStats stats;
  QuantileSampler quantiles(1 << 17);
  double max_seen = 0;
  std::uint64_t beyond_1000 = 0, beyond_1e6 = 0;

  for (int i = 0; i < runs; ++i) {
    const double seconds = model.Sample(rng);
    histogram.Add(seconds);
    stats.Add(seconds);
    quantiles.Add(seconds);
    max_seen = std::max(max_seen, seconds);
    beyond_1000 += (seconds > 1000.0);
    beyond_1e6 += (seconds > 1e6);
  }

  // The head of the histogram, where the action is (X truncated at
  // 1000 s as in the paper; first 20 buckets).
  for (std::size_t b = 0; b < 20; ++b) {
    ScenarioCell cell;
    cell.dims.emplace_back("bucket_lo_s", histogram.bucket_lo(b));
    cell.dims.emplace_back("bucket_hi_s", histogram.bucket_hi(b));
    cell.metrics.emplace_back("count",
                              static_cast<double>(histogram.bucket(b)));
    report.cells.push_back(std::move(cell));
  }

  ScenarioCell summary;
  summary.metrics.emplace_back("samples", static_cast<double>(runs));
  summary.metrics.emplace_back(
      "peak_bucket", static_cast<double>(histogram.max_bucket_count()));
  summary.metrics.emplace_back("median_s", quantiles.Quantile(0.5));
  summary.metrics.emplace_back("p90_s", quantiles.Quantile(0.9));
  summary.metrics.emplace_back("p99_s", quantiles.Quantile(0.99));
  summary.metrics.emplace_back("beyond_1000",
                               static_cast<double>(beyond_1000));
  summary.metrics.emplace_back("beyond_1e6", static_cast<double>(beyond_1e6));
  summary.metrics.emplace_back("max_s", max_seen);
  report.cells.push_back(std::move(summary));

  report.note =
      "shape check: mode in the first bucket (a few seconds), monotone "
      "decay over the truncated axis, and a heavy tail past 1e6 s (paper: "
      "peak 19,756 runs; max 'more than 1e6 seconds').";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "fig9_workload",
    "CPU-time distribution of 236,222 synthetic PUNCH runs", RunFig9);

}  // namespace
}  // namespace actyp
