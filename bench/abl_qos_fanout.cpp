// Ablation: QoS fan-out (§6 — "higher levels of QoS could be provided by
// simultaneously forwarding a given query to multiple pool managers and
// pool objects, and utilizing the best response"). Replicated pools give
// the duplicates somewhere to go; the reintegrator keeps the best
// response and releases the rest.
#include <cstdio>

#include "actyp/scenario.hpp"

int main() {
  using namespace actyp;
  std::printf("== Ablation — QoS fan-out (best-of-N duplicates) ==\n");
  std::printf("%8s %12s %12s %12s %10s %8s\n", "fanout", "mean(s)", "p50(s)",
              "p95(s)", "queries", "fail");
  for (const std::uint32_t fanout : {1u, 2u, 4u}) {
    ScenarioConfig config;
    config.machines = 1600;
    config.clusters = 1;
    config.pool_replicas = 4;   // duplicates land on distinct replicas
    config.pool_managers = 4;
    config.qos_fanout = fanout;
    config.clients = 8;
    config.seed = 4242 + fanout;
    SimScenario scenario(config);
    scenario.Measure(Seconds(3), Seconds(20));
    std::printf("%8u %12.4f %12.4f %12.4f %10llu %8llu\n", fanout,
                scenario.collector().response_stats().mean(),
                scenario.collector().QuantileSeconds(0.5),
                scenario.collector().QuantileSeconds(0.95),
                static_cast<unsigned long long>(
                    scenario.collector().completed()),
                static_cast<unsigned long long>(
                    scenario.collector().failures()));
  }
  std::printf(
      "\nshape check: fan-out trades aggregate work for tail latency — the\n"
      "p95 narrows toward the p50 as N grows, while total pool work (and\n"
      "released duplicates) increases.\n");
  return 0;
}
