// Ablation: QoS fan-out (§6 — "higher levels of QoS could be provided by
// simultaneously forwarding a given query to multiple pool managers and
// pool objects, and utilizing the best response"). Replicated pools give
// the duplicates somewhere to go; the reintegrator keeps the best
// response and releases the rest.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunAblQosFanout(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "abl_qos_fanout";
  report.title = "Ablation — QoS fan-out (best-of-N duplicates)";
  std::vector<bench::CellTask> tasks;
  for (const std::uint32_t fanout : {1u, 2u, 4u}) {
    ScenarioConfig config;
    config.machines = options.machines.value_or(1600);
    config.clusters = 1;
    config.pool_replicas = 4;  // duplicates land on distinct replicas
    config.pool_managers = 4;
    config.qos_fanout = fanout;
    config.clients = options.clients.value_or(8);
    config.seed = bench::CellSeed(options, 4242, fanout);
    tasks.push_back([config = std::move(config), &options, fanout] {
      const auto result =
          bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                         bench::ScaledSeconds(options, 20));
      ScenarioCell cell;
      cell.dims.emplace_back("fanout", static_cast<double>(fanout));
      bench::AppendMetrics(result, &cell);
      return cell;
    });
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: fan-out trades aggregate work for tail latency — the "
      "p95 narrows toward the p50 as N grows, while total pool work (and "
      "released duplicates) increases.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "abl_qos_fanout",
    "duplicate queries to N replicas, reintegrator keeps the best response",
    RunAblQosFanout);

}  // namespace
}  // namespace actyp
