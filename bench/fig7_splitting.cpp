// Figure 7: effect of splitting a hot 3,200-machine pool into 1) two
// pools of 1,600 and 2) four pools of 800. A query fans out to every
// segment; concurrent searches run over the partitions and the
// reintegrator aggregates the results.
#include "bench_common.hpp"

int main() {
  using namespace actyp;
  bench::PrintHeader("Fig. 7 — splitting a 3,200-machine pool", "segments",
                     "clients");
  for (const std::uint32_t segments : {1u, 2u, 4u}) {
    for (const std::size_t clients : {1, 10, 20, 30, 40, 50, 60, 70}) {
      ScenarioConfig config;
      config.machines = 3200;
      config.clusters = 1;
      config.pool_segments = segments;
      config.clients = clients;
      config.seed = 7000 + segments * 100 + clients;
      const auto result = bench::RunCell(config);
      bench::PrintRow(static_cast<long>(segments),
                      static_cast<long>(clients), result);
    }
  }
  std::printf(
      "\nshape check: splitting improves response time at every client\n"
      "count; 4x800 beats 2x1600 beats 1x3200 (concurrent partial scans,\n"
      "paper Fig. 7).\n");
  return 0;
}
