// Figure 7: effect of splitting a hot 3,200-machine pool into 1) two
// pools of 1,600 and 2) four pools of 800. A query fans out to every
// segment; concurrent searches run over the partitions and the
// reintegrator aggregates the results.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunFig7(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "fig7_splitting";
  report.title = "Fig. 7 — splitting a 3,200-machine pool";
  const std::size_t machines = options.machines.value_or(3200);
  std::vector<bench::CellTask> tasks;
  for (const std::uint32_t segments : {1u, 2u, 4u}) {
    for (const std::size_t clients : bench::SweepOr(
             options.clients, {1, 10, 20, 30, 40, 50, 60, 70})) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = 1;
      config.pool_segments = segments;
      config.clients = clients;
      config.seed = bench::CellSeed(options, 7000, segments * 100 + clients);
      tasks.push_back(
          [config = std::move(config), &options, segments, clients] {
            const auto result = bench::RunCell(
                config, options, bench::ScaledSeconds(options, 3),
                bench::ScaledSeconds(options, 15));
            ScenarioCell cell;
            cell.dims.emplace_back("segments", static_cast<double>(segments));
            cell.dims.emplace_back("clients", static_cast<double>(clients));
            bench::AppendMetrics(result, &cell);
            return cell;
          });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: splitting improves response time at every client "
      "count; 4x800 beats 2x1600 beats 1x3200 (concurrent partial scans, "
      "paper Fig. 7).";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "fig7_splitting",
    "splitting one hot pool into 2x1600 / 4x800 concurrent segments",
    RunFig7);

}  // namespace
}  // namespace actyp
