// Ablation: pool-manager delegation (§5.2.2). A query that no local pool
// manager can satisfy walks the peer list — each hop appends the manager
// to the visited list and decrements the TTL, exactly like an IP packet.
// This scenario measures how long an unsatisfiable query takes to fail
// as a function of its TTL and the number of peers.
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "directory/directory.hpp"
#include "pipeline/pool_manager.hpp"
#include "query/parser.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"

namespace actyp {
namespace {

struct Probe final : net::Node {
  void OnMessage(const net::Envelope& env, net::NodeContext& ctx) override {
    if (env.message.type == net::msg::kFailure) {
      failed_at = ctx.Now();
      error = env.message.Header(net::hdr::kError);
    }
  }
  SimTime failed_at = -1;
  std::string error;
};

ScenarioReport RunAblDelegation(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "abl_delegation";
  report.title = "Ablation — delegation chains (TTL walk to failure)";
  std::vector<bench::CellTask> tasks;
  for (const int peers : {4, 8, 16}) {
    for (const int ttl : {2, 4, 8, 16}) {
      tasks.push_back([peers, ttl, &options] {
        // Declared before the network so it outlives the pool-manager
        // nodes holding a pointer to it.
        profile::StageProfiler profiler;
        simnet::SimKernel kernel;
        simnet::SimNetwork network(
            &kernel, simnet::Topology::Lan(),
            bench::CellSeed(options, 900, peers * 31 + ttl));
        network.AddHost("alpha", 12);
        directory::DirectoryService directory;
        for (int i = 0; i < peers; ++i) {
          pipeline::PoolManagerConfig config;
          config.name = "pm" + std::to_string(i);
          config.allow_create = false;  // force delegation
          if (options.profile) config.profiler = &profiler;
          network.AddNode(
              config.name,
              std::make_shared<pipeline::PoolManager>(config, &directory),
              {"alpha", 1});
        }
        auto probe = std::make_shared<Probe>();
        network.AddNode("probe", probe, {"alpha", 1});

        auto q = query::Parser::ParseBasic("punch.rsrc.arch = vax\n");
        q->set_ttl(ttl);
        net::Message m{net::msg::kQuery};
        m.SetHeader(net::hdr::kReplyTo, "probe");
        m.SetHeader(net::hdr::kRequestId, "1");
        m.body = q->ToText();
        network.Post("probe", "pm0", std::move(m));
        kernel.Run();

        const bool ttl_hit = probe->error.find("TTL") != std::string::npos;
        ScenarioCell cell;
        cell.labels.emplace_back(
            "terminated_by", ttl_hit ? "ttl-expired" : "all-peers-visited");
        cell.dims.emplace_back("ttl", ttl);
        cell.dims.emplace_back("peers", peers);
        cell.metrics.emplace_back("time_to_fail_ms",
                                  ToMillis(probe->failed_at));
        if (options.profile) {
          // Only the pool-manager hop exists in this micro-topology.
          bench::AppendStageMetrics(profiler,
                                    {profile::Stage::kPmDelegate}, &cell);
        }
        return cell;
      });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: time-to-failure grows with min(ttl, peers); with few "
      "peers the visited list terminates the walk, with many peers the TTL "
      "does — queries can never circulate forever.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "abl_delegation",
    "time-to-failure of unsatisfiable queries walking the peer list",
    RunAblDelegation);

}  // namespace
}  // namespace actyp
