// Shared helpers for the figure/ablation scenarios: run one simulated
// measurement cell, apply driver overrides, and build report cells.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "actyp/scenario.hpp"
#include "actyp/scenario_registry.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault_plan.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "profile/metrics_exporter.hpp"
#include "profile/stage_profiler.hpp"
#include "profile/trace_assembler.hpp"

namespace actyp::bench {

struct CellResult {
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  std::uint64_t completed = 0;
  std::uint64_t failures = 0;
  // Fault-regime observables (all zero on a healthy network).
  double success_rate = 0;  // completed / (completed + failures)
  std::uint64_t lost = 0;   // messages dropped by loss + partitions
  std::uint64_t machines_crashed = 0;
  std::uint64_t services_crashed = 0;
  std::uint64_t pools_created = 0;  // on-demand creations via the proxy
  // Engine observables for the scaling sweeps.
  std::uint64_t events = 0;          // kernel events executed (whole run)
  double wall_s = 0;                 // host wall-clock for the cell
  std::uint64_t allocations = 0;     // pool allocations granted
  std::uint64_t entries_examined = 0;  // selection cost across the run
  std::uint64_t entries_refreshed = 0;  // cache entries re-read on ticks
  std::uint64_t refresh_ticks = 0;      // periodic refresh sweeps run
  // Client retry policy (zero unless retry-max is set).
  std::uint64_t retries = 0;
  // Replicated-directory observables (all zero when --replicas <= 1).
  std::uint64_t sync_bytes = 0;      // anti-entropy wire bytes
  std::uint64_t full_syncs = 0;      // bounded-journal fallbacks
  std::uint64_t failovers = 0;       // reads/writes served off-site
  std::uint64_t convergences = 0;    // disruptions fully reconciled
  std::uint64_t tombstones_gc = 0;   // LWW tombstones garbage-collected
  double max_staleness_s = 0;        // worst replica lag behind the group
  double converge_time_s = 0;        // last disruption -> convergence
  // Per-stage latency digests (src/profile/), indexed by profile::Stage.
  // `profiled` is false when the run was built with profiling off, and
  // AppendMetrics then emits no stage metrics at all — the seed report.
  bool profiled = false;
  std::array<profile::StageSummary, profile::kStageCount> stages{};
  // Trace-derived tail attribution (profiled runs only): the per-request
  // traces assembled from the span ring's window, and which stage
  // dominated the slowest of them (index into profile::Stage; -1 when
  // the window held no complete trace).
  std::uint64_t trace_count = 0;
  int slow_trace_top_stage = -1;
  std::array<double, profile::kStageCount> tail_share{};
};

// Merges the driver's fault, replication, and retry overrides (--loss /
// --churn-rate / --fault-plan / --replicas / --sync-period /
// --retry-max / --retry-backoff) into a scenario config. Lossy or
// churny runs also need a client give-up timer, or the closed loop
// deadlocks on the first dropped reply — default one when the scenario
// did not set its own.
inline void ApplyFaults(const ScenarioRunOptions& options,
                        ScenarioConfig* config) {
  if (options.replicas) config->directory_replicas = *options.replicas;
  // Durations scale with --time-scale, exactly like the scenarios'
  // fault schedules and their own defaults for these knobs — so the
  // flags compose with smoke-run scaling instead of fighting it.
  if (options.sync_period_s) {
    config->directory_sync_period =
        Seconds(*options.sync_period_s * options.time_scale);
  }
  if (options.retry_max) config->retry_max = *options.retry_max;
  if (options.retry_backoff_s) {
    config->retry_backoff =
        Seconds(*options.retry_backoff_s * options.time_scale);
  }
  if (options.loss) config->message_loss_probability = *options.loss;
  if (!options.fault_plan_text.empty()) {
    auto plan = fault::FaultPlan::Parse(options.fault_plan_text);
    if (plan.ok()) {
      for (auto& event : plan->events) {
        config->fault_plan.events.push_back(std::move(event));
      }
    } else {
      // The driver validates before running; other callers must not get
      // a silently fault-free run from a bad plan.
      ACTYP_WARN << "fault plan ignored: " << plan.status().ToString();
    }
  }
  if (options.churn_rate && *options.churn_rate > 0) {
    config->fault_plan.AddChurn(*options.churn_rate, Seconds(5.0));
  }
  if ((config->message_loss_probability > 0 ||
       !config->fault_plan.empty()) &&
      config->client_request_timeout == 0) {
    // Scaled like the measurement window, so smoke runs still recover.
    config->client_request_timeout =
        Seconds((config->wan ? 5.0 : 2.0) * options.time_scale);
  }
}

// Harvests a finished scenario into a CellResult (shared by both
// RunCell overloads; wall_start is when cell construction began).
inline CellResult CollectCell(
    SimScenario& scenario,
    std::chrono::steady_clock::time_point wall_start) {
  CellResult result;
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  result.events = scenario.total_events();
  result.mean_s = scenario.collector().response_stats().mean();
  result.p50_s = scenario.collector().QuantileSeconds(0.50);
  result.p95_s = scenario.collector().QuantileSeconds(0.95);
  result.completed = scenario.collector().completed();
  result.failures = scenario.collector().failures();
  const std::uint64_t attempts = result.completed + result.failures;
  result.success_rate =
      attempts == 0 ? 0.0
                    : static_cast<double>(result.completed) /
                          static_cast<double>(attempts);
  result.lost = scenario.network().lost_messages() +
                scenario.network().partition_dropped();
  result.machines_crashed = scenario.fault_stats().machines_crashed;
  result.services_crashed =
      scenario.fault_stats().services_crashed + scenario.fault_stats().pools_killed;
  result.pools_created = scenario.proxy_stats().pools_created;
  const auto pool_stats = scenario.TotalPoolStats();
  result.allocations = pool_stats.allocations;
  result.entries_examined = pool_stats.entries_examined;
  result.entries_refreshed = pool_stats.entries_refreshed;
  result.refresh_ticks = pool_stats.refresh_ticks;
  result.retries = scenario.total_client_retries();
  const auto replica_stats = scenario.replica_stats();
  result.sync_bytes = replica_stats.sync_bytes;
  result.full_syncs = replica_stats.full_syncs;
  result.failovers = replica_stats.failovers;
  result.convergences = replica_stats.convergences;
  result.tombstones_gc = replica_stats.tombstones_gc;
  result.max_staleness_s = replica_stats.max_staleness_s;
  result.converge_time_s = replica_stats.converge_time_s;
  if (const profile::StageProfiler* profiler = scenario.profiler()) {
    result.profiled = true;
    for (std::size_t i = 0; i < profile::kStageCount; ++i) {
      result.stages[i] =
          profiler->Summary(static_cast<profile::Stage>(i));
    }
    // Tail attribution over the traces still assembled in the ring
    // window — a deterministic function of the seed (and the ring
    // capacity, which bounds the window).
    const profile::AssembledTraces assembled =
        profile::TraceAssembler::Assemble(profiler->RingSnapshot());
    const profile::TailReport tail =
        profile::TraceAssembler::Tail(assembled.requests);
    result.trace_count = tail.trace_count;
    result.slow_trace_top_stage = tail.slow_top_stage;
    result.tail_share = tail.tail_share;
  }
  return result;
}

// Runs one scenario cell: warm up, reset the collector, measure.
inline CellResult RunCell(ScenarioConfig config,
                          SimDuration warmup = Seconds(3),
                          SimDuration measure = Seconds(15)) {
  const auto wall_start = std::chrono::steady_clock::now();
  SimScenario scenario(std::move(config));
  scenario.Measure(warmup, measure);
  return CollectCell(scenario, wall_start);
}

// One incremental streaming snapshot of a running cell: sim time,
// throughput counters, and — when profiled — the per-stage p95s so
// far. Emitted on the sim clock by the --metrics-interval hook.
inline profile::MetricCell StreamSnapshot(SimScenario& scenario) {
  profile::MetricCell cell;
  cell.scenario = "stream";
  cell.labels.emplace_back("seed",
                           std::to_string(scenario.config().seed));
  cell.values.emplace_back("t_s", ToSeconds(scenario.kernel().Now()));
  cell.values.emplace_back(
      "completed", static_cast<double>(scenario.collector().completed()));
  cell.values.emplace_back(
      "failures", static_cast<double>(scenario.collector().failures()));
  if (const profile::StageProfiler* profiler = scenario.profiler()) {
    for (std::size_t i = 0; i < profile::kStageCount; ++i) {
      const auto stage = static_cast<profile::Stage>(i);
      const profile::StageSummary summary = profiler->Summary(stage);
      const std::string name(profile::StageName(stage));
      cell.values.emplace_back(name + "_count",
                               static_cast<double>(summary.count));
      cell.values.emplace_back(name + "_p95_s", summary.p95_s);
    }
  }
  return cell;
}

// RunCell with the driver's fault overrides applied first; every
// scenario routes through this so --loss / --churn-rate / --fault-plan
// compose with any figure or ablation. This overload also carries the
// observability wiring: the --metrics-interval streaming timer (a
// self-re-arming kernel event — extra events never reorder existing
// ones under the kernel's (at, seq) tie-break, so arming it cannot
// perturb the simulation) and the --trace-out span capture, taken
// before the scenario is torn down.
inline CellResult RunCell(ScenarioConfig config,
                          const ScenarioRunOptions& options,
                          SimDuration warmup, SimDuration measure) {
  ApplyFaults(options, &config);
  config.profile = options.profile;
  config.cell_jobs = options.cell_jobs;
  if (options.profile_ring_capacity) {
    config.profile_ring_capacity = *options.profile_ring_capacity;
  }
  if (!options.profile_sampling.empty()) {
    // The driver validated the name at flag-parse time.
    if (const auto mode =
            profile::SamplingModeFromName(options.profile_sampling)) {
      config.profile_sampling = *mode;
    }
  }
  config.flight_recorder = options.flight_sink != nullptr;
  const auto wall_start = std::chrono::steady_clock::now();
  SimScenario scenario(std::move(config));
  if (options.metrics_streamer != nullptr && options.metrics_interval_s > 0 &&
      scenario.lp_mode()) {
    // The streaming tick executes on shard 0's kernel mid-window, where
    // reading the other shards' profilers would race their workers.
    ACTYP_WARN << "cell: --metrics-interval streaming disabled for "
                  "LP-parallel scenarios; final metrics still export";
  } else if (options.metrics_streamer != nullptr &&
             options.metrics_interval_s > 0) {
    const auto interval = std::max<SimDuration>(
        Seconds(options.metrics_interval_s * options.time_scale), 1);
    profile::MetricsStreamer* streamer = options.metrics_streamer;
    SimScenario* running = &scenario;
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [tick, streamer, running, interval] {
      streamer->WriteCell(StreamSnapshot(*running));
      running->kernel().Schedule(interval, [tick] { (*tick)(); });
    };
    scenario.kernel().Schedule(interval, [tick] { (*tick)(); });
  }
  if (options.telemetry_sink != nullptr && options.telemetry_interval_s > 0) {
    // Sampled measurement: the window advances in interval-sized chunks
    // and one gauge sample is taken at each boundary (workers idle).
    // Chunking never reorders events, so the report is unchanged.
    const auto interval = std::max<SimDuration>(
        Seconds(options.telemetry_interval_s * options.time_scale), 1);
    std::vector<profile::MetricCell> samples;
    scenario.Measure(warmup, measure, interval, [&](SimTime t) {
      samples.push_back(obs::TelemetrySample(scenario, t));
    });
    options.telemetry_sink->Add(scenario.config().seed, std::move(samples));
  } else {
    scenario.Measure(warmup, measure);
  }
  if (options.quiesce_s > 0) {
    // --quiesce: drain past the measurement window so the collected
    // success rate / convergence state reflect the recovered system,
    // not the mid-disruption snapshot. 0 leaves the path untouched.
    scenario.RunUntil(scenario.kernel().Now() +
                      Seconds(options.quiesce_s * options.time_scale));
  }
  CellResult result = CollectCell(scenario, wall_start);
  if (options.trace_sink != nullptr && scenario.profiler() != nullptr) {
    options.trace_sink->Add(scenario.config().seed,
                            scenario.profiler()->RingSnapshot());
  }
  if (options.flight_sink != nullptr) {
    options.flight_sink->Add(scenario.config().seed,
                             scenario.FlightSnapshot());
  }
  return result;
}

// A sweep dimension collapses to the override when the driver pins it.
inline std::vector<std::size_t> SweepOr(
    const std::optional<std::size_t>& pinned,
    std::initializer_list<std::size_t> defaults) {
  if (pinned) return {*pinned};
  return defaults;
}

// Simulated duration scaled by the driver's --time-scale.
inline SimDuration ScaledSeconds(const ScenarioRunOptions& options,
                                 double seconds) {
  return Seconds(seconds * options.time_scale);
}

// Per-cell seed: the driver's --seed replaces the scenario's base seed,
// the per-cell offset keeps cells decorrelated either way.
inline std::uint64_t CellSeed(const ScenarioRunOptions& options,
                              std::uint64_t base, std::uint64_t offset) {
  return options.seed.value_or(base) + offset;
}

// Appends the standard response-time metrics to a report cell, plus —
// when the run was profiled — the per-stage latency percentiles
// ("<stage>_p50_s" / "_p95_s" / "_p99_s" for the six pipeline hops;
// see profile::StageName). Unprofiled runs append exactly the legacy
// five metrics, which is what keeps --no-profile output byte-identical
// to the seed.
inline void AppendMetrics(const CellResult& result, ScenarioCell* cell) {
  cell->metrics.emplace_back("mean_s", result.mean_s);
  cell->metrics.emplace_back("p50_s", result.p50_s);
  cell->metrics.emplace_back("p95_s", result.p95_s);
  cell->metrics.emplace_back("completed",
                             static_cast<double>(result.completed));
  cell->metrics.emplace_back("failures",
                             static_cast<double>(result.failures));
  if (!result.profiled) return;
  for (std::size_t i = 0; i < profile::kStageCount; ++i) {
    const std::string stage(
        profile::StageName(static_cast<profile::Stage>(i)));
    const profile::StageSummary& summary = result.stages[i];
    cell->metrics.emplace_back(stage + "_p50_s", summary.p50_s);
    cell->metrics.emplace_back(stage + "_p95_s", summary.p95_s);
    cell->metrics.emplace_back(stage + "_p99_s", summary.p99_s);
  }
  // Trace-derived tail attribution: which stage dominated the slowest
  // assembled traces (stage index; -1 = no traces in the window), and
  // each pipeline stage's share of the tail's attributed time. The
  // umbrella client_issue span and the background stages never appear
  // in request waterfalls, so only the five handling stages report.
  cell->metrics.emplace_back("trace_count",
                             static_cast<double>(result.trace_count));
  cell->metrics.emplace_back(
      "slow_trace_top_stage",
      static_cast<double>(result.slow_trace_top_stage));
  for (const profile::Stage stage :
       {profile::Stage::kQmAdmit, profile::Stage::kPmDelegate,
        profile::Stage::kPoolSelect, profile::Stage::kReintegrate,
        profile::Stage::kReply}) {
    const std::string name(profile::StageName(stage));
    cell->metrics.emplace_back(
        name + "_tail_share",
        result.tail_share[static_cast<std::size_t>(stage)]);
  }
}

// Appends "<stage>_p50_s/_p95_s/_p99_s" for each requested stage —
// for scenarios that run a profiler outside the CellResult path.
inline void AppendStageMetrics(const profile::StageProfiler& profiler,
                               std::initializer_list<profile::Stage> stages,
                               ScenarioCell* cell) {
  for (const profile::Stage stage : stages) {
    const std::string name(profile::StageName(stage));
    const profile::StageSummary summary = profiler.Summary(stage);
    cell->metrics.emplace_back(name + "_p50_s", summary.p50_s);
    cell->metrics.emplace_back(name + "_p95_s", summary.p95_s);
    cell->metrics.emplace_back(name + "_p99_s", summary.p99_s);
  }
}

// Every instrumented stage from a finished scenario (pipeline hops
// plus the replica_sync / monitor_sweep background services); no-op
// when the run was built with profiling off.
inline void AppendStageMetrics(const SimScenario& scenario,
                               ScenarioCell* cell) {
  const profile::StageProfiler* profiler = scenario.profiler();
  if (profiler == nullptr) return;
  for (std::size_t i = 0; i < profile::kStageCount; ++i) {
    AppendStageMetrics(*profiler, {static_cast<profile::Stage>(i)}, cell);
  }
}

// Appends the fault-regime metrics the lossy/churn scenarios report on
// top of the standard ones.
inline void AppendFaultMetrics(const CellResult& result, ScenarioCell* cell) {
  cell->metrics.emplace_back("success_rate", result.success_rate);
  cell->metrics.emplace_back("lost", static_cast<double>(result.lost));
  cell->metrics.emplace_back("retries", static_cast<double>(result.retries));
}

// Appends the replicated-directory metrics (wan_partition_heal,
// directory_failover, fig8's replicated-directory cells). All values
// are deterministic functions of the seed and are perf-tracked.
inline void AppendReplicaMetrics(const CellResult& result,
                                 ScenarioCell* cell) {
  cell->metrics.emplace_back("sync_bytes",
                             static_cast<double>(result.sync_bytes));
  cell->metrics.emplace_back("full_syncs",
                             static_cast<double>(result.full_syncs));
  cell->metrics.emplace_back("failovers",
                             static_cast<double>(result.failovers));
  cell->metrics.emplace_back("convergences",
                             static_cast<double>(result.convergences));
  cell->metrics.emplace_back("tombstones_gc",
                             static_cast<double>(result.tombstones_gc));
  cell->metrics.emplace_back("max_staleness_s", result.max_staleness_s);
  cell->metrics.emplace_back("converge_time_s", result.converge_time_s);
}

// Appends the engine metrics the scaling sweeps report: selection cost
// (entries examined per allocation — the indexed-vs-linear headroom),
// refresh cost (cache entries re-read per periodic tick — with dirty-id
// refresh this tracks monitor churn, not cache size), and host-side
// event throughput. ev_per_s_wall is wall-clock derived: it is excluded
// from the perf baseline diff and zeroed under --stable so fixed-seed
// output is byte-identical across hosts and --jobs values.
inline void AppendEngineMetrics(const CellResult& result,
                                const ScenarioRunOptions& options,
                                ScenarioCell* cell) {
  const double per_alloc =
      result.allocations == 0
          ? 0.0
          : static_cast<double>(result.entries_examined) /
                static_cast<double>(result.allocations);
  cell->metrics.emplace_back("sel_cost", per_alloc);
  cell->metrics.emplace_back("entries_refreshed",
                             static_cast<double>(result.entries_refreshed));
  const double per_tick =
      result.refresh_ticks == 0
          ? 0.0
          : static_cast<double>(result.entries_refreshed) /
                static_cast<double>(result.refresh_ticks);
  cell->metrics.emplace_back("refresh_cost", per_tick);
  cell->metrics.emplace_back(
      "ev_per_s_wall",
      options.stable || result.wall_s <= 0
          ? 0.0
          : static_cast<double>(result.events) / result.wall_s);
}

// --- parallel sweep execution ---

// One queued sweep cell: builds its own SimScenario (kernel, network,
// RNG) from a config whose seed was already fixed by CellSeed, runs it,
// and returns the finished report cell.
using CellTask = std::function<ScenarioCell()>;

// Runs the queued cells — serially for options.jobs <= 1, concurrently
// on a ThreadPool otherwise — and appends them to the report in queue
// order. Cells share no mutable state (each task owns its simulation),
// so the report is byte-identical whatever the worker count.
inline void RunCellTasks(const ScenarioRunOptions& options,
                         std::vector<CellTask> tasks,
                         ScenarioReport* report) {
  std::vector<ScenarioCell> cells(tasks.size());
  const std::size_t jobs = std::min(options.jobs, tasks.size());
  if (jobs <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) cells[i] = tasks[i]();
  } else {
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      pool.Submit([&cells, &tasks, i] { cells[i] = tasks[i](); });
    }
    pool.Drain();
  }
  report->cells.reserve(report->cells.size() + cells.size());
  for (auto& cell : cells) report->cells.push_back(std::move(cell));
}

}  // namespace actyp::bench
