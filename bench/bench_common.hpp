// Shared helpers for the figure-reproduction benches: run one simulated
// measurement cell and print aligned result rows.
#pragma once

#include <cstdio>

#include "actyp/scenario.hpp"

namespace actyp::bench {

struct CellResult {
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  std::uint64_t completed = 0;
  std::uint64_t failures = 0;
};

// Runs one scenario cell: warm up, reset the collector, measure.
inline CellResult RunCell(ScenarioConfig config,
                          SimDuration warmup = Seconds(3),
                          SimDuration measure = Seconds(15)) {
  SimScenario scenario(std::move(config));
  scenario.Measure(warmup, measure);
  CellResult result;
  result.mean_s = scenario.collector().response_stats().mean();
  result.p50_s = scenario.collector().QuantileSeconds(0.50);
  result.p95_s = scenario.collector().QuantileSeconds(0.95);
  result.completed = scenario.collector().completed();
  result.failures = scenario.collector().failures();
  return result;
}

inline void PrintHeader(const char* title, const char* dim1,
                        const char* dim2) {
  std::printf("\n== %s ==\n", title);
  std::printf("%10s %10s %12s %12s %12s %10s %8s\n", dim1, dim2, "mean(s)",
              "p50(s)", "p95(s)", "queries", "fail");
}

inline void PrintRow(long d1, long d2, const CellResult& r) {
  std::printf("%10ld %10ld %12.4f %12.4f %12.4f %10llu %8llu\n", d1, d2,
              r.mean_s, r.p50_s, r.p95_s,
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.failures));
}

}  // namespace actyp::bench
