// Shared helpers for the figure/ablation scenarios: run one simulated
// measurement cell, apply driver overrides, and build report cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "actyp/scenario.hpp"
#include "actyp/scenario_registry.hpp"

namespace actyp::bench {

struct CellResult {
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  std::uint64_t completed = 0;
  std::uint64_t failures = 0;
};

// Runs one scenario cell: warm up, reset the collector, measure.
inline CellResult RunCell(ScenarioConfig config,
                          SimDuration warmup = Seconds(3),
                          SimDuration measure = Seconds(15)) {
  SimScenario scenario(std::move(config));
  scenario.Measure(warmup, measure);
  CellResult result;
  result.mean_s = scenario.collector().response_stats().mean();
  result.p50_s = scenario.collector().QuantileSeconds(0.50);
  result.p95_s = scenario.collector().QuantileSeconds(0.95);
  result.completed = scenario.collector().completed();
  result.failures = scenario.collector().failures();
  return result;
}

// A sweep dimension collapses to the override when the driver pins it.
inline std::vector<std::size_t> SweepOr(
    const std::optional<std::size_t>& pinned,
    std::initializer_list<std::size_t> defaults) {
  if (pinned) return {*pinned};
  return defaults;
}

// Simulated duration scaled by the driver's --time-scale.
inline SimDuration ScaledSeconds(const ScenarioRunOptions& options,
                                 double seconds) {
  return Seconds(seconds * options.time_scale);
}

// Per-cell seed: the driver's --seed replaces the scenario's base seed,
// the per-cell offset keeps cells decorrelated either way.
inline std::uint64_t CellSeed(const ScenarioRunOptions& options,
                              std::uint64_t base, std::uint64_t offset) {
  return options.seed.value_or(base) + offset;
}

// Appends the standard response-time metrics to a report cell.
inline void AppendMetrics(const CellResult& result, ScenarioCell* cell) {
  cell->metrics.emplace_back("mean_s", result.mean_s);
  cell->metrics.emplace_back("p50_s", result.p50_s);
  cell->metrics.emplace_back("p95_s", result.p95_s);
  cell->metrics.emplace_back("completed",
                             static_cast<double>(result.completed));
  cell->metrics.emplace_back("failures",
                             static_cast<double>(result.failures));
}

}  // namespace actyp::bench
