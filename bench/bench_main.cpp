// Shared main for the standalone bench binaries: each target sets
// ACTYP_BENCH_SCENARIO to its registered scenario name at compile time
// and prints the table report. The unified driver (tools/actyp_sim.cpp)
// is the richer front end; these binaries keep the one-figure-per-binary
// workflow alive.
#include <cstdio>
#include <iostream>

#include "actyp/scenario_registry.hpp"

#ifndef ACTYP_BENCH_SCENARIO
#error "ACTYP_BENCH_SCENARIO must name a registered scenario"
#endif

int main() {
  const auto* info =
      actyp::ScenarioRegistry::Instance().Find(ACTYP_BENCH_SCENARIO);
  if (info == nullptr) {
    std::fprintf(stderr, "scenario '%s' is not registered\n",
                 ACTYP_BENCH_SCENARIO);
    return 1;
  }
  const actyp::ScenarioReport report = info->run(actyp::ScenarioRunOptions{});
  actyp::WriteReportTable(report, std::cout);
  return 0;
}
