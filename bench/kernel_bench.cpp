// Microbenchmark for the discrete-event kernel's slab-allocated 4-ary
// heap: schedule/pop throughput, cancellation cost, and a side-by-side
// against the std::priority_queue<Event> structure the kernel replaced.
//
//   kernel_bench [events] [pending]
//
// `events` is the total number of events pushed through each benchmark
// (default 2,000,000; the ctest smoke passes a small count), `pending`
// the steady-state queue depth (default 4,096). Results are ops/sec on
// the host — wall-clock numbers, not part of the deterministic
// baseline.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "simnet/kernel.hpp"

namespace {

using actyp::Rng;
using actyp::SimTime;
using actyp::simnet::SimKernel;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Report(const char* name, std::size_t ops, double elapsed) {
  std::printf("%-28s %10zu events  %8.3f s  %12.0f events/s\n", name, ops,
              elapsed, elapsed > 0 ? static_cast<double>(ops) / elapsed : 0);
}

// The pre-refactor structure, for comparison: a binary heap of fat
// events, no cancellation, move-out via const_cast.
struct LegacyQueue {
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> events;
  std::uint64_t seq = 0;

  void Schedule(SimTime at, std::function<void()> fn) {
    events.push(Event{at, seq++, std::move(fn)});
  }
  bool Step() {
    if (events.empty()) return false;
    Event event = std::move(const_cast<Event&>(events.top()));
    events.pop();
    event.fn();
    return true;
  }
};

// Steady-state churn: keep `pending` events queued; every pop schedules
// one replacement at a pseudo-random future time.
void BenchLegacy(std::size_t total, std::size_t pending) {
  LegacyQueue queue;
  Rng rng(7);
  SimTime now = 0;
  std::size_t fired = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < pending; ++i) {
    queue.Schedule(static_cast<SimTime>(rng.NextBounded(1000)), [&fired] {
      ++fired;
    });
  }
  while (fired < total) {
    now += 1;
    queue.Schedule(now + static_cast<SimTime>(rng.NextBounded(1000)),
                   [&fired] { ++fired; });
    queue.Step();
  }
  Report("legacy priority_queue", fired, Seconds(start));
}

void BenchSlab(std::size_t total, std::size_t pending) {
  SimKernel kernel;
  kernel.Reserve(pending + 1);
  Rng rng(7);
  std::size_t fired = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < pending; ++i) {
    kernel.Schedule(static_cast<SimTime>(rng.NextBounded(1000)), [&fired] {
      ++fired;
    });
  }
  while (fired < total) {
    kernel.Schedule(static_cast<SimTime>(1 + rng.NextBounded(1000)),
                    [&fired] { ++fired; });
    kernel.Step();
  }
  Report("slab 4-ary heap", fired, Seconds(start));
}

// Same churn, but half the scheduled events are cancelled before they
// can fire — the give-up-timer pattern lossy scenarios produce.
void BenchSlabCancel(std::size_t total, std::size_t pending) {
  SimKernel kernel;
  kernel.Reserve(pending + 2);
  Rng rng(7);
  std::size_t fired = 0;
  std::size_t cancelled = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < pending; ++i) {
    kernel.Schedule(static_cast<SimTime>(rng.NextBounded(1000)), [&fired] {
      ++fired;
    });
  }
  while (fired + cancelled < total) {
    const SimKernel::TimerId doomed = kernel.Schedule(
        static_cast<SimTime>(1 + rng.NextBounded(1000)), [] {});
    kernel.Schedule(static_cast<SimTime>(1 + rng.NextBounded(1000)),
                    [&fired] { ++fired; });
    if (kernel.Cancel(doomed)) ++cancelled;
    kernel.Step();
  }
  Report("slab with 50% cancels", fired + cancelled, Seconds(start));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total = 2'000'000;
  std::size_t pending = 4'096;
  if (argc > 1) {
    total = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    pending = static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10));
  }
  if (total == 0 || pending == 0) {
    std::fprintf(stderr, "usage: kernel_bench [events] [pending]\n");
    return 2;
  }
  std::printf("kernel_bench: %zu events, %zu steady-state pending\n", total,
              pending);
  BenchLegacy(total, pending);
  BenchSlab(total, pending);
  BenchSlabCancel(total, pending);
  return 0;
}
