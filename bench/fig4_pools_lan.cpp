// Figure 4: effect of the number of pools on response time in a LAN
// configuration. 3,200 machines uniformly distributed across pools;
// client queries distributed randomly across pools; clients and the
// ActYP service in one site (service on a 12-core server, as in the
// paper's 12-processor Alpha).
//
// Expected shape (paper): response time falls steeply as pools go from
// 1-2 to 16, flattening as fixed pipeline costs dominate.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunFig4(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "fig4_pools_lan";
  report.title = "Fig. 4 — pools vs response time (LAN), 3200 machines";
  const std::size_t machines = options.machines.value_or(3200);
  std::vector<bench::CellTask> tasks;
  for (const std::size_t clients :
       bench::SweepOr(options.clients, {8, 16, 32, 64})) {
    for (const std::size_t pools : {1, 2, 4, 8, 16}) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = pools;
      config.clients = clients;
      config.seed = bench::CellSeed(options, 4000, pools * 100 + clients);
      tasks.push_back([config = std::move(config), &options, pools, clients] {
        const auto result =
            bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                           bench::ScaledSeconds(options, 15));
        ScenarioCell cell;
        cell.dims.emplace_back("pools", static_cast<double>(pools));
        cell.dims.emplace_back("clients", static_cast<double>(clients));
        bench::AppendMetrics(result, &cell);
        return cell;
      });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: response time decreases monotonically with pools for "
      "every client count; the 64-client curve spans roughly an order of "
      "magnitude from 1-2 pools to 16 pools (paper Fig. 4: ~1.2s -> ~0.1s).";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "fig4_pools_lan",
    "pools vs response time, clients and service in one LAN site", RunFig4);

}  // namespace
}  // namespace actyp
