// Figure 4: effect of the number of pools on response time in a LAN
// configuration. 3,200 machines uniformly distributed across pools;
// client queries distributed randomly across pools; clients and the
// ActYP service in one site (service on a 12-core server, as in the
// paper's 12-processor Alpha).
//
// Expected shape (paper): response time falls steeply as pools go from
// 1-2 to 16, flattening as fixed pipeline costs dominate.
#include "bench_common.hpp"

int main() {
  using namespace actyp;
  bench::PrintHeader("Fig. 4 — pools vs response time (LAN), 3200 machines",
                     "pools", "clients");
  for (const std::size_t clients : {8, 16, 32, 64}) {
    for (const std::size_t pools : {1, 2, 4, 8, 16}) {
      ScenarioConfig config;
      config.machines = 3200;
      config.clusters = pools;
      config.clients = clients;
      config.seed = 4000 + pools * 100 + clients;
      const auto result = bench::RunCell(config);
      bench::PrintRow(static_cast<long>(pools), static_cast<long>(clients),
                      result);
    }
  }
  std::printf(
      "\nshape check: response time decreases monotonically with pools for\n"
      "every client count; the 64-client curve spans roughly an order of\n"
      "magnitude from 1-2 pools to 16 pools (paper Fig. 4: ~1.2s -> ~0.1s).\n");
  return 0;
}
