// Ablation: scheduling objectives (§5.2.3 lets pool objects be
// configured with different objectives). Jobs hold machines for an
// exponential service time, so the placement decision matters: this
// scenario compares the policies on response time and on how hard the
// pool has to oversubscribe.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunAblSchedPolicy(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "abl_sched_policy";
  report.title = "Ablation — scheduling policy under held jobs";
  std::vector<bench::CellTask> tasks;
  for (const char* policy :
       {"least-load", "linear-least-load", "most-memory", "fastest",
        "round-robin", "random"}) {
    tasks.push_back([policy, &options] {
      ScenarioConfig config;
      // Demand exceeds supply: 48 closed-loop clients holding ~8s jobs
      // on 40 machines, so placement quality shows up as forced
      // oversubscription and response-time spread.
      config.machines = options.machines.value_or(40);
      config.clusters = 1;
      config.clients = options.clients.value_or(48);
      config.policy = policy;
      config.seed = options.seed.value_or(31337);
      config.profile = options.profile;
      config.job_duration = [](Rng& rng) {
        return static_cast<SimDuration>(rng.Exponential(8e6));
      };
      SimScenario scenario(config);
      scenario.Measure(bench::ScaledSeconds(options, 5),
                       bench::ScaledSeconds(options, 60));
      const auto stats = scenario.TotalPoolStats();
      ScenarioCell cell;
      cell.labels.emplace_back("policy", policy);
      cell.metrics.emplace_back(
          "mean_s", scenario.collector().response_stats().mean());
      cell.metrics.emplace_back("p95_s",
                                scenario.collector().QuantileSeconds(0.95));
      cell.metrics.emplace_back(
          "completed", static_cast<double>(scenario.collector().completed()));
      cell.metrics.emplace_back("oversubscribed",
                                static_cast<double>(stats.oversubscribed));
      cell.metrics.emplace_back("entries_examined",
                                static_cast<double>(stats.entries_examined));
      bench::AppendStageMetrics(scenario, &cell);
      return cell;
    });
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: at saturation every policy is forced to oversubscribe "
      "occasionally and throughput converges (the load ceiling in "
      "Eligible() equalizes placement); the residual difference is "
      "per-query scan cost — round-robin/random stop at the first eligible "
      "machine and linear-least-load examines the whole cache, while the "
      "indexed least-load answers the same allocations in near-constant "
      "entries_examined.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "abl_sched_policy",
    "placement policies under held jobs at saturation", RunAblSchedPolicy);

}  // namespace
}  // namespace actyp
