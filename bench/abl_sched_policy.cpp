// Ablation: scheduling objectives (§5.2.3 lets pool objects be
// configured with different objectives). Jobs hold machines for an
// exponential service time, so the placement decision matters: this
// bench compares the policies on response time and on how hard the pool
// has to oversubscribe.
#include <cstdio>

#include "actyp/scenario.hpp"

int main() {
  using namespace actyp;
  std::printf("== Ablation — scheduling policy under held jobs ==\n");
  std::printf("%12s %12s %12s %10s %14s\n", "policy", "mean(s)", "p95(s)",
              "queries", "oversubscribed");
  for (const char* policy :
       {"least-load", "most-memory", "fastest", "round-robin", "random"}) {
    ScenarioConfig config;
    // Demand exceeds supply: 48 closed-loop clients holding ~8s jobs on
    // 40 machines, so placement quality shows up as forced
    // oversubscription and response-time spread.
    config.machines = 40;
    config.clusters = 1;
    config.clients = 48;
    config.policy = policy;
    config.seed = 31337;
    config.job_duration = [](Rng& rng) {
      return static_cast<SimDuration>(rng.Exponential(8e6));
    };
    SimScenario scenario(config);
    scenario.Measure(Seconds(5), Seconds(60));
    const auto stats = scenario.TotalPoolStats();
    std::printf("%12s %12.4f %12.4f %10llu %14llu\n", policy,
                scenario.collector().response_stats().mean(),
                scenario.collector().QuantileSeconds(0.95),
                static_cast<unsigned long long>(
                    scenario.collector().completed()),
                static_cast<unsigned long long>(stats.oversubscribed));
  }
  std::printf(
      "\nshape check: at saturation every policy is forced to\n"
      "oversubscribe occasionally and throughput converges (the load\n"
      "ceiling in Eligible() equalizes placement); the residual\n"
      "difference is per-query scan cost — round-robin/random stop at\n"
      "the first eligible machine while the objective-driven policies\n"
      "examine the whole cache, which is why pools pair them with the\n"
      "periodic re-sort (§5.2.3).\n");
  return 0;
}
