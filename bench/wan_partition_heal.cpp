// wan_partition_heal: the replicated-directory convergence experiment
// the ROADMAP called for. A two-site WAN deployment (service stack split
// across "upc" and "purdue" when the directory is replicated) suffers a
// site partition; pool-process churn during the cut makes both sides
// mutate their own directory replica (unregister on crash, re-register
// on restart), so the replicas diverge. After the heal, journal-driven
// anti-entropy reconciles them; converge_time measures heal ->
// byte-identical record sets. A third regime crashes the whole purdue
// site (correlated site-crash: machines + co-located services +
// replica together) and measures the recovery instead.
//
// replicas=1 runs the same fault schedule against the seed
// single-directory deployment for contrast: every component lives on
// one host, so the partition only severs the clients and nothing
// needs to converge.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunWanPartitionHeal(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "wan_partition_heal";
  report.title = "Replica — WAN partition, divergence, heal-to-convergence";
  const std::size_t machines = options.machines.value_or(800);
  const std::size_t clients = options.clients.value_or(16);
  const double ts = options.time_scale;

  struct Regime {
    const char* label;
    bool partition;
    bool site_crash;
  };
  const Regime regimes[] = {
      {"clean", false, false},
      {"partition", true, false},
      {"site_crash", false, true},
  };

  std::vector<std::uint32_t> replica_sweep = {1, 2};
  if (options.replicas) replica_sweep = {*options.replicas};

  int index = 0;
  std::vector<bench::CellTask> tasks;
  for (const std::uint32_t replicas : replica_sweep) {
    for (const Regime& regime : regimes) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = 2;
      config.clients = clients;
      config.wan = true;
      config.pool_replicas = 2;
      config.query_managers = 2;
      config.pool_managers = 2;
      config.directory_replicas = replicas;
      // 0.35 s deliberately does not divide the fault schedule's times,
      // so the heal never lands exactly on a sync tick and converge_time
      // records a real (nonzero) reconciliation delay.
      config.directory_sync_period =
          Seconds(options.sync_period_s.value_or(0.35) * ts);
      config.client_request_timeout = bench::ScaledSeconds(options, 2.0);
      config.retry_max = options.retry_max.value_or(2);
      config.retry_backoff = bench::ScaledSeconds(options, 0.25);

      // Fault schedule (simulated seconds, scaled like the measurement
      // window): cut at 6, heal at 12, measure until 18. Churn rate
      // scales inversely so the expected number of strikes inside the
      // window is invariant under --time-scale.
      std::string plan_text;
      if (regime.partition) {
        plan_text +=
            "partition start=" + std::to_string(6.0 * ts) +
            " end=" + std::to_string(12.0 * ts) +
            " site_a=purdue site_b=upc\n";
        plan_text += "churn start=" + std::to_string(6.0 * ts) +
                     " end=" + std::to_string(12.0 * ts) +
                     " rate=" + std::to_string(1.0 / ts) +
                     " downtime=" + std::to_string(1.5 * ts) +
                     " target=pool.*\n";
      }
      if (regime.site_crash) {
        plan_text += "site-crash at=" + std::to_string(6.0 * ts) +
                     " site=purdue\n";
        plan_text += "site-restore at=" + std::to_string(11.0 * ts) +
                     " site=purdue\n";
      }
      if (!plan_text.empty()) {
        auto plan = fault::FaultPlan::Parse(plan_text);
        if (plan.ok()) config.fault_plan = std::move(plan.value());
      }
      config.seed = bench::CellSeed(options, 41000,
                                    static_cast<std::uint64_t>(index) * 100 +
                                        clients);
      ++index;
      tasks.push_back([config = std::move(config), &options, regime,
                       replicas] {
        const auto result = bench::RunCell(
            config, options, bench::ScaledSeconds(options, 3),
            bench::ScaledSeconds(options, 15));
        ScenarioCell cell;
        cell.labels.emplace_back("regime", regime.label);
        cell.dims.emplace_back("replicas", static_cast<double>(replicas));
        bench::AppendMetrics(result, &cell);
        bench::AppendFaultMetrics(result, &cell);
        bench::AppendReplicaMetrics(result, &cell);
        return cell;
      });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: with replicas=2 the partition regime diverges the two "
      "directory replicas (registrations land on each side) and "
      "converge_time_s > 0 records the post-heal anti-entropy "
      "reconciliation; the purdue-side stack keeps serving its clients "
      "through its own replica, so success_rate beats the replicas=1 run, "
      "where the cut severs every client from the only directory.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "wan_partition_heal",
    "WAN partition with divergent directory replicas, heal-to-convergence",
    RunWanPartitionHeal);

}  // namespace
}  // namespace actyp
