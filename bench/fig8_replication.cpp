// Figure 8: effect of replicating a 3,200-machine pool (1, 2, 4
// concurrent pool processes over the same machine set). Scheduling
// integrity across replicas comes from the instance-specific bias
// (instance i prefers every i-th machine).
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunFig8(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "fig8_replication";
  report.title = "Fig. 8 — replicating a 3,200-machine pool";
  const std::size_t machines = options.machines.value_or(3200);
  std::vector<bench::CellTask> tasks;
  for (const std::uint32_t replicas : {1u, 2u, 4u}) {
    for (const std::size_t clients : bench::SweepOr(
             options.clients, {1, 10, 20, 30, 40, 50, 60, 70})) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = 1;
      config.pool_replicas = replicas;
      config.clients = clients;
      config.seed = bench::CellSeed(options, 8000, replicas * 100 + clients);
      tasks.push_back(
          [config = std::move(config), &options, replicas, clients] {
            const auto result = bench::RunCell(
                config, options, bench::ScaledSeconds(options, 3),
                bench::ScaledSeconds(options, 15));
            ScenarioCell cell;
            cell.dims.emplace_back("replicas", static_cast<double>(replicas));
            cell.dims.emplace_back("clients", static_cast<double>(clients));
            bench::AppendMetrics(result, &cell);
            return cell;
          });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: replication improves throughput for a fixed machine "
      "set — the response-time-vs-clients slope drops roughly with the "
      "number of concurrent pool processes (paper Fig. 8).";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "fig8_replication",
    "replicating one pool into 1/2/4 concurrent pool processes", RunFig8);

}  // namespace
}  // namespace actyp
