// Figure 8: effect of replicating a 3,200-machine pool (1, 2, 4
// concurrent pool processes over the same machine set). Scheduling
// integrity across replicas comes from the instance-specific bias
// (instance i prefers every i-th machine).
#include "bench_common.hpp"

int main() {
  using namespace actyp;
  bench::PrintHeader("Fig. 8 — replicating a 3,200-machine pool", "replicas",
                     "clients");
  for (const std::uint32_t replicas : {1u, 2u, 4u}) {
    for (const std::size_t clients : {1, 10, 20, 30, 40, 50, 60, 70}) {
      ScenarioConfig config;
      config.machines = 3200;
      config.clusters = 1;
      config.pool_replicas = replicas;
      config.clients = clients;
      config.seed = 8000 + replicas * 100 + clients;
      const auto result = bench::RunCell(config);
      bench::PrintRow(static_cast<long>(replicas),
                      static_cast<long>(clients), result);
    }
  }
  std::printf(
      "\nshape check: replication improves throughput for a fixed machine\n"
      "set — the response-time-vs-clients slope drops roughly with the\n"
      "number of concurrent pool processes (paper Fig. 8).\n");
  return 0;
}
