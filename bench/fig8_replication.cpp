// Figure 8: effect of replicating a 3,200-machine pool (1, 2, 4
// concurrent pool processes over the same machine set). Scheduling
// integrity across replicas comes from the instance-specific bias
// (instance i prefers every i-th machine).
//
// The "directory" label separates the seed behavior — replicated pool
// processes registered in the single authoritative directory — from the
// real replica path, where the directory itself is replicated to the
// same factor (src/replica/) and every instance registers with and is
// resolved through the replica group under anti-entropy.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunFig8(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "fig8_replication";
  report.title = "Fig. 8 — replicating a 3,200-machine pool";
  const std::size_t machines = options.machines.value_or(3200);
  std::vector<bench::CellTask> tasks;
  for (const bool replicated_dir : {false, true}) {
    // --replicas pins the directory dimension: 1 keeps only the seed
    // (single-directory) cells, >1 only the replicated ones — the label
    // must stay truthful under the driver's override.
    if (options.replicas && replicated_dir != (*options.replicas > 1)) {
      continue;
    }
    for (const std::uint32_t replicas : {1u, 2u, 4u}) {
      if (replicated_dir && replicas == 1) continue;  // same as the seed cell
      // The driver's override pins directory_replicas for every cell;
      // keep only the cells whose directory factor equals the pin so
      // the replicas dim stays truthful ("directory replicated to the
      // same factor as the pool").
      if (replicated_dir && options.replicas && *options.replicas != replicas) {
        continue;
      }
      for (const std::size_t clients : bench::SweepOr(
               options.clients, {1, 10, 20, 30, 40, 50, 60, 70})) {
        ScenarioConfig config;
        config.machines = machines;
        config.clusters = 1;
        config.pool_replicas = replicas;
        config.directory_replicas = replicated_dir ? replicas : 1;
        config.clients = clients;
        // Seed cells keep their historical seeds (their numbers must not
        // move); replicated-directory cells get a disjoint seed block.
        config.seed =
            bench::CellSeed(options, 8000,
                            (replicated_dir ? 10000 : 0) + replicas * 100 +
                                clients);
        tasks.push_back([config = std::move(config), &options, replicas,
                         clients, replicated_dir] {
          const auto result = bench::RunCell(
              config, options, bench::ScaledSeconds(options, 3),
              bench::ScaledSeconds(options, 15));
          ScenarioCell cell;
          cell.labels.emplace_back("directory",
                                   replicated_dir ? "replicated" : "single");
          cell.dims.emplace_back("replicas", static_cast<double>(replicas));
          cell.dims.emplace_back("clients", static_cast<double>(clients));
          bench::AppendMetrics(result, &cell);
          if (replicated_dir) bench::AppendReplicaMetrics(result, &cell);
          return cell;
        });
      }
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: replication improves throughput for a fixed machine "
      "set — the response-time-vs-clients slope drops roughly with the "
      "number of concurrent pool processes (paper Fig. 8); the "
      "replicated-directory cells track the seed curves with a small "
      "constant anti-entropy overhead (sync_bytes), the fig8 claim that "
      "yellow-pages replication does not cost scheduling quality.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "fig8_replication",
    "replicating one pool into 1/2/4 concurrent pool processes", RunFig8);

}  // namespace
}  // namespace actyp
