// ondemand_churn: on-demand pool creation (`precreate_pools = false`)
// under pool churn — the paper's "active" yellow-pages behaviour, where
// categories are materialized from the observed query mix, exercised in
// a hostile regime. The injector repeatedly kills a random live pool
// instance straight out of the directory (node removed, registration
// dropped, claim freed); the next query for that category misses in
// the directory, so the pool manager asks the proxy to rebuild the
// pool on the fly. `pools_created` counts those rebuilds: the churn
// premium the proxy pays to keep the service converged.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunOndemandChurn(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "ondemand_churn";
  report.title =
      "Fault — on-demand pool creation under pool churn, 4 categories (LAN)";
  const std::size_t machines = options.machines.value_or(1600);
  const std::size_t clients = options.clients.value_or(16);

  int index = 0;
  std::vector<bench::CellTask> tasks;
  for (const double rate : {0.0, 0.2, 0.5, 1.0}) {
    ScenarioConfig config;
    config.machines = machines;
    config.clusters = 4;
    config.clients = clients;
    config.precreate_pools = false;
    config.client_request_timeout = bench::ScaledSeconds(options, 2.0);
    if (rate > 0) config.fault_plan.AddChurn(rate, 0, "pools");
    config.seed = bench::CellSeed(options, 9400,
                                  static_cast<std::uint64_t>(index) * 100 +
                                      clients);
    ++index;
    tasks.push_back([config = std::move(config), &options, rate] {
      const auto result =
          bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                         bench::ScaledSeconds(options, 15));
      ScenarioCell cell;
      cell.dims.emplace_back("rate", rate);
      bench::AppendMetrics(result, &cell);
      bench::AppendFaultMetrics(result, &cell);
      cell.metrics.emplace_back("pools_created",
                                static_cast<double>(result.pools_created));
      return cell;
    });
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: rate=0 pays only the cold-start burst (queries racing "
      "an unbuilt category can spawn duplicate replicas); under churn every "
      "kill is followed by an on-demand rebuild, and success rate dips only "
      "for the queries in flight during one — on-demand aggregation makes "
      "pool death a transient, not an outage.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "ondemand_churn",
    "on-demand pool re-creation while pool instances are being killed",
    RunOndemandChurn);

}  // namespace
}  // namespace actyp
