// lossy_lan: the Fig. 4 LAN deployment under message loss. The fault
// subsystem opens a loss window covering the whole run at each swept
// probability; clients arm a give-up timer so a dropped request or
// reply costs one failed interaction instead of a deadlocked client.
// Success rate falls and the surviving queries keep their LAN latency —
// the pipeline has no retransmission, exactly like the 2001 prototype's
// "queries propagate via TCP or UDP" datagram mode.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunLossyLan(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "lossy_lan";
  report.title = "Fault — message loss on a LAN, 4 pools, 1600 machines";
  const std::size_t machines = options.machines.value_or(1600);
  std::vector<bench::CellTask> tasks;
  for (const std::size_t clients : bench::SweepOr(options.clients, {16})) {
    int index = 0;
    for (const double loss : {0.0, 0.01, 0.05, 0.10, 0.20}) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = 4;
      config.clients = clients;
      config.client_request_timeout = bench::ScaledSeconds(options, 2.0);
      if (loss > 0) config.fault_plan.AddLossWindow(loss);
      config.seed = bench::CellSeed(options, 9100,
                                    static_cast<std::uint64_t>(index) * 100 +
                                        clients);
      ++index;
      tasks.push_back([config = std::move(config), &options, loss, clients] {
        const auto result =
            bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                           bench::ScaledSeconds(options, 15));
        ScenarioCell cell;
        cell.dims.emplace_back("loss", loss);
        cell.dims.emplace_back("clients", static_cast<double>(clients));
        bench::AppendMetrics(result, &cell);
        bench::AppendFaultMetrics(result, &cell);
        return cell;
      });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: success_rate decays roughly like the probability that "
      "all four message legs survive ((1-p)^4); completed throughput falls "
      "with it while the latency of surviving queries stays near the "
      "loss-free LAN figure.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "lossy_lan", "Fig. 4 LAN deployment under swept message-loss rates",
    RunLossyLan);

}  // namespace
}  // namespace actyp
