// Multi-PM scaling sweep (beyond the paper): grows the pool-manager
// tier — the stage that maps signatures to pool instances — against a
// fixed fleet split into 8 pools, under the indexed least-load policy.
// Queries are spread over 2 query managers so the entry stage is not
// the limiter; the sweep shows where the mapping tier stops being one.
// Composes with --loss / --churn-rate / --fault-plan; see qm_scaling
// for the sel_cost / ev_per_s_wall metric semantics.
#include "bench_common.hpp"

namespace actyp {
namespace {

ScenarioReport RunPmScaling(const ScenarioRunOptions& options) {
  ScenarioReport report;
  report.scenario = "pm_scaling";
  report.title =
      "PM scaling — pool managers vs response time, indexed least-load";
  const std::size_t machines = options.machines.value_or(1600);
  std::vector<bench::CellTask> tasks;
  for (const std::size_t clients :
       bench::SweepOr(options.clients, {16, 64})) {
    for (const std::size_t pms : {1, 2, 4, 8}) {
      ScenarioConfig config;
      config.machines = machines;
      config.clusters = 8;
      config.query_managers = 2;
      config.pool_managers = pms;
      config.clients = clients;
      config.policy = "least-load";  // the indexed fast path
      config.seed = bench::CellSeed(options, 220000, pms * 1000 + clients);
      tasks.push_back([config = std::move(config), &options, pms, clients] {
        const auto result =
            bench::RunCell(config, options, bench::ScaledSeconds(options, 3),
                           bench::ScaledSeconds(options, 15));
        ScenarioCell cell;
        cell.dims.emplace_back("pms", static_cast<double>(pms));
        cell.dims.emplace_back("clients", static_cast<double>(clients));
        bench::AppendMetrics(result, &cell);
        bench::AppendEngineMetrics(result, options, &cell);
        return cell;
      });
    }
  }
  bench::RunCellTasks(options, std::move(tasks), &report);
  report.note =
      "shape check: response time is flat or falling in pool managers "
      "for each client count (the PM stage pipelines; the pools bound "
      "throughput once PMs stop queueing), and sel_cost stays O(1)-flat "
      "thanks to the indexed policy.";
  return report;
}

const ScenarioRegistrar kRegistrar(
    "pm_scaling",
    "pool-manager tier scaling under the indexed least-load policy",
    RunPmScaling);

}  // namespace
}  // namespace actyp
