// hotspot_classroom: the paper's motivating hot-spot story (§6-7).
//
// A class of students starts a lab assignment: suddenly most queries
// request the same resource class. This example runs the same burst
// against (a) one big pool, (b) the pool split into four segments, and
// (c) the pool replicated four ways, and prints the response-time
// comparison — Figs. 7 and 8 in miniature.
//
//   ./build/examples/hotspot_classroom
#include <cstdio>

#include "actyp/scenario.hpp"

using namespace actyp;

namespace {

struct Outcome {
  double mean_s;
  double p95_s;
  std::uint64_t served;
};

Outcome RunClassroom(const char* label, std::uint32_t segments,
                     std::uint32_t replicas) {
  ScenarioConfig config;
  config.machines = 1600;
  config.clusters = 1;          // every student needs the same class of machine
  config.pool_segments = segments;
  config.pool_replicas = replicas;
  config.clients = 48;          // the class logs in
  config.seed = 2024;
  SimScenario scenario(config);
  scenario.Measure(Seconds(3), Seconds(25));
  Outcome outcome{scenario.collector().response_stats().mean(),
                  scenario.collector().QuantileSeconds(0.95),
                  scenario.collector().completed()};
  std::printf("%-28s mean %7.1f ms   p95 %7.1f ms   served %llu\n", label,
              outcome.mean_s * 1e3, outcome.p95_s * 1e3,
              static_cast<unsigned long long>(outcome.served));
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "48 students hammer one 1,600-machine resource class (closed loop)\n\n");
  const Outcome one = RunClassroom("single pool", 1, 1);
  const Outcome split = RunClassroom("split into 4 segments", 4, 1);
  const Outcome replicated = RunClassroom("replicated 4 instances", 1, 4);

  std::printf("\nsplitting speedup   : %.1fx\n", one.mean_s / split.mean_s);
  std::printf("replication speedup : %.1fx\n",
              one.mean_s / replicated.mean_s);
  std::printf(
      "\nThe active yellow pages can apply either fix at run time by\n"
      "re-defining the aggregation constraints — no reconfiguration of the\n"
      "rest of the system (paper §6, Figs. 7-8).\n");
  return 0;
}
