// tcp_demo: the pipeline behind a real TCP frontend.
//
// The production PUNCH portal spoke to ActYP over TCP (§6: "queries
// propagate from one stage to the next via TCP or UDP"). This example
// runs the pipeline stages on the threaded in-process transport, exposes
// the query-manager entry point on a loopback TCP socket, and issues
// real socket calls against it — the same wire format a remote network
// desktop would use.
//
//   ./build/examples/tcp_demo
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "db/database.hpp"
#include "db/shadow.hpp"
#include "directory/directory.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "pipeline/pool_manager.hpp"
#include "pipeline/proxy.hpp"
#include "pipeline/query_manager.hpp"
#include "workload/generator.hpp"

using namespace actyp;

namespace {

// Bridges a synchronous TCP request onto the asynchronous pipeline: the
// gateway node forwards the query and wakes the waiting TCP handler when
// the answer comes back.
class Gateway final : public net::Node {
 public:
  void OnMessage(const net::Envelope& env, net::NodeContext&) override {
    std::lock_guard<std::mutex> lock(mu_);
    replies_[env.message.Header(net::hdr::kRequestId)] = env.message;
    cv_.notify_all();
  }

  net::Message Await(const std::string& request_id) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, std::chrono::seconds(5), [&] {
          return replies_.count(request_id) > 0;
        })) {
      net::Message timeout{net::msg::kFailure};
      timeout.SetHeader(net::hdr::kError, "gateway timeout");
      return timeout;
    }
    net::Message reply = replies_.at(request_id);
    replies_.erase(request_id);
    return reply;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, net::Message> replies_;
};

}  // namespace

int main() {
  // --- substrate: white pages + shadow accounts + directory ---
  db::ResourceDatabase database;
  db::ShadowAccountRegistry shadows;
  db::PolicyRegistry policies;
  directory::DirectoryService directory;
  Rng rng(3);
  workload::FleetSpec fleet;
  fleet.machine_count = 64;
  fleet.cluster_count = 2;
  BuildFleet(fleet, rng, &database, &shadows);

  // --- pipeline on the threaded transport ---
  net::InProcConfig net_config;
  net_config.latency = [](const net::Address&, const net::Address&) {
    return Micros(200);  // LAN-ish
  };
  net::InProcNetwork network(net_config);

  pipeline::ProxyConfig proxy_config;
  network.AddNode("proxy",
                  std::make_shared<pipeline::ProxyServer>(
                      proxy_config, &network, &database, &directory, &shadows,
                      &policies),
                  {});

  pipeline::PoolManagerConfig pm_config;
  pm_config.name = "pm0";
  pm_config.proxies = {"proxy"};
  network.AddNode("pm0",
                  std::make_shared<pipeline::PoolManager>(pm_config,
                                                          &directory),
                  {});

  pipeline::QueryManagerConfig qm_config;
  qm_config.name = "qm0";
  qm_config.default_pool_managers = {"pm0"};
  network.AddNode("qm0", std::make_shared<pipeline::QueryManager>(qm_config),
                  {});

  auto gateway = std::make_shared<Gateway>();
  network.AddNode("gateway", gateway, {});

  // --- TCP frontend ---
  net::TcpServer server;
  int next_request = 0;
  auto status = server.Start(0, [&](const net::Message& request) {
    net::Message query = request;
    const std::string request_id = std::to_string(++next_request);
    query.SetHeader(net::hdr::kRequestId, request_id);
    query.SetHeader(net::hdr::kReplyTo, "gateway");
    network.Post("gateway", "qm0", std::move(query));
    return gateway->Await(request_id);
  });
  if (!status.ok()) {
    std::printf("failed to start TCP server: %s\n",
                status.ToString().c_str());
    return 1;
  }
  std::printf("ActYP query manager listening on 127.0.0.1:%u\n\n",
              server.port());

  // --- a "remote network desktop" issues real socket calls ---
  for (const char* body :
       {"punch.rsrc.cluster = c0\npunch.user.login = demo\n",
        "punch.rsrc.cluster = c1\npunch.user.login = demo\n",
        "punch.rsrc.cluster = c0\npunch.user.login = demo\n"}) {
    net::Message request{net::msg::kQuery};
    request.body = body;
    auto reply = net::TcpClient::Call("127.0.0.1", server.port(), request);
    if (!reply.ok()) {
      std::printf("call failed: %s\n", reply.status().ToString().c_str());
      continue;
    }
    if (reply->type == net::msg::kAllocation) {
      std::printf("allocated %s  port %s  session %s\n",
                  reply->Header(net::hdr::kMachine).c_str(),
                  reply->Header(net::hdr::kPort).c_str(),
                  reply->Header(net::hdr::kSessionKey).c_str());
    } else {
      std::printf("failure: %s\n", reply->Header(net::hdr::kError).c_str());
    }
  }

  std::printf("\npools created on demand: %zu\n", directory.PoolNames().size());
  server.Stop();
  network.Shutdown();
  return 0;
}
