// punch_session: the full Fig. 1 user journey, end to end.
//
// A user logs into the network desktop through a browser, picks
// TSUPREM-4 (the paper's example tool) and submits an input deck. The
// application-management component (Fig. 2) extracts parameters,
// estimates the run, ranks algorithms, composes the ActYP query; the
// pipeline aggregates a pool on the fly, allocates a machine + shadow
// account + session key; the virtual file system mounts the application
// and data disks; the run completes and everything is relinquished.
//
//   ./build/examples/punch_session
#include <cstdio>

#include "actyp/scenario.hpp"
#include "punch/desktop.hpp"

using namespace actyp;

namespace {

// Bridges the synchronous desktop API onto the simulated pipeline: each
// submit posts the query and runs the kernel until the answer arrives.
class SimSubmitter {
 public:
  explicit SimSubmitter(SimScenario* scenario) : scenario_(scenario) {}

  Result<pipeline::Allocation> Submit(const std::string& query_text) {
    struct Inbox final : net::Node {
      void OnMessage(const net::Envelope& env, net::NodeContext&) override {
        replies.push_back(env.message);
      }
      std::vector<net::Message> replies;
    };
    const std::string address = "desktop." + std::to_string(++seq_);
    auto inbox = std::make_shared<Inbox>();
    scenario_->network().AddNode(address, inbox, {"clients", 1});

    net::Message message{net::msg::kQuery};
    message.SetHeader(net::hdr::kReplyTo, address);
    message.SetHeader(net::hdr::kRequestId, std::to_string(seq_));
    message.body = query_text;
    scenario_->network().Post(address, "qm0", std::move(message));
    // Step until the reply lands (the deployment has periodic timers, so
    // the event queue never drains on its own).
    const SimTime deadline = scenario_->kernel().Now() + Seconds(120);
    while (inbox->replies.empty() && scenario_->kernel().Now() < deadline &&
           scenario_->kernel().Step()) {
    }

    if (inbox->replies.empty()) return Unavailable("no reply from pipeline");
    if (inbox->replies[0].type == net::msg::kFailure) {
      return Unavailable(inbox->replies[0].Header(net::hdr::kError));
    }
    return pipeline::ParseAllocationMessage(inbox->replies[0]);
  }

  void Release(const pipeline::Allocation& allocation) {
    scenario_->network().Post(
        "desktop.release", allocation.pool_address,
        pipeline::MakeReleaseMessage(allocation.machine_id,
                                     allocation.session_key));
    scenario_->kernel().RunUntil(scenario_->kernel().Now() + Seconds(1));
  }

 private:
  SimScenario* scenario_;
  int seq_ = 0;
};

}  // namespace

int main() {
  // A 256-machine campus grid; pools are created on demand by the
  // pipeline (the "active" yellow pages at work).
  ScenarioConfig config;
  config.machines = 256;
  config.clusters = 1;
  config.clients = 0;
  config.precreate_pools = false;
  config.seed = 11;
  SimScenario scenario(config);

  // Give the fleet the attributes the demo tools need.
  scenario.database().ForEach([&scenario](const db::MachineRecord& rec) {
    scenario.database().Update(rec.id, [](db::MachineRecord& r) {
      r.params["license"] = "tsuprem4";
      r.params["domain"] = "purdue";
      r.params["memory"] = "1024";
      r.params["arch"] = r.id % 3 == 0 ? "hp" : "sun";
    });
  });

  punch::KnowledgeBase kb = punch::KnowledgeBase::Demo();
  punch::UserRegistry users;
  punch::UserAccount account;
  account.login = "kapadia";
  account.access_group = "ece";
  account.storage_provider = "warehouse";  // remote storage provider (§2)
  users.AddUser(account);
  punch::VirtualFileSystem vfs;

  SimSubmitter submitter(&scenario);
  punch::NetworkDesktop desktop(
      &kb, &users, &vfs,
      [&submitter](const std::string& text) { return submitter.Submit(text); },
      [&submitter](const pipeline::Allocation& a) { submitter.Release(a); });

  std::printf("PUNCH session — user 'kapadia' runs TSUPREM-4\n\n");

  punch::RunRequest request;
  request.tool = "tsuprem4";
  request.user_login = "kapadia";
  request.domain = "purdue";
  request.input_deck =
      "# carrier transport for the given device specs\n"
      "nodes = 20000\n"
      "carriers = 50000\n"
      "devicesize = 0.25\n"
      "norm = 1e-6\n";

  auto outcome = desktop.StartRun(request);
  if (!outcome.ok()) {
    std::printf("run failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("algorithm selected : %s\n",
              outcome->estimate.algorithm.c_str());
  std::printf("estimated cpu      : %.0f reference seconds\n",
              outcome->estimate.cpu_units);
  std::printf("estimated memory   : %.0f MB\n", outcome->estimate.memory_mb);
  std::printf("machine            : %s (execution port %u)\n",
              outcome->allocation.machine_name.c_str(),
              outcome->allocation.port);
  std::printf("shadow uid         : %u\n", outcome->allocation.shadow_uid);
  std::printf("session key        : %s\n",
              outcome->allocation.session_key.c_str());
  std::printf("pool               : %s\n",
              outcome->allocation.pool_name.c_str());
  for (const auto& mount : outcome->mounts) {
    std::printf("mounted            : %s -> %s\n", mount.disk.c_str(),
                mount.mount_point.c_str());
  }

  // ... application executes; display routed to the browser via VNC ...

  desktop.FinishRun(*outcome);
  std::printf("\nrun complete: disks unmounted, shadow account and machine "
              "relinquished\n");
  std::printf("directory now holds %zu dynamically created pool(s)\n",
              scenario.directory().PoolNames().size());
  return 0;
}
