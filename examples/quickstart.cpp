// Quickstart: stand up a complete ActYP deployment on the simulator —
// 3,200-machine white pages, monitor, query manager, pool manager,
// reintegrator, four dynamically-aggregated resource pools, and sixteen
// closed-loop clients — run a minute of simulated load, and print the
// client-observed response-time distribution.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "actyp/scenario.hpp"

int main() {
  actyp::ScenarioConfig config;
  config.machines = 3200;
  config.clusters = 4;   // queries aggregate into four pools
  config.clients = 16;
  config.seed = 1;

  actyp::SimScenario scenario(config);

  // 10 s warm-up (pool creation, first sorts), then 60 s measured.
  scenario.Measure(actyp::Seconds(10), actyp::Seconds(60));

  const auto stats = scenario.collector().response_stats();
  std::printf("ActYP quickstart — %zu machines, %zu pools, %zu clients\n",
              config.machines, config.clusters, config.clients);
  std::printf("  completed queries : %zu\n", stats.count());
  std::printf("  mean response     : %.1f ms\n", stats.mean() * 1e3);
  std::printf("  p50 / p95 / p99   : %.1f / %.1f / %.1f ms\n",
              scenario.collector().QuantileSeconds(0.50) * 1e3,
              scenario.collector().QuantileSeconds(0.95) * 1e3,
              scenario.collector().QuantileSeconds(0.99) * 1e3);
  std::printf("  failures          : %llu\n",
              static_cast<unsigned long long>(scenario.collector().failures()));

  const auto pool_stats = scenario.TotalPoolStats();
  std::printf("  pool allocations  : %llu (oversubscribed %llu)\n",
              static_cast<unsigned long long>(pool_stats.allocations),
              static_cast<unsigned long long>(pool_stats.oversubscribed));
  return 0;
}
