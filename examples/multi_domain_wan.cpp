// multi_domain_wan: decentralized scheduling across administrative
// domains (§6 "multiple administrative domains" + the Fig. 5 WAN
// deployment).
//
// Clients at Purdue query a local query manager; the ActYP service runs
// at UPC across a ~30 ms WAN link. Queries whose pool does not exist are
// delegated between pool managers with the TTL + visited list carried in
// the query itself, and interop clients submit in ClassAd and RSL syntax
// through the translation hook.
//
//   ./build/examples/multi_domain_wan
#include <cstdio>

#include "actyp/scenario.hpp"
#include "interop/classad.hpp"
#include "interop/rsl.hpp"

using namespace actyp;

namespace {

struct Inbox final : net::Node {
  void OnMessage(const net::Envelope& env, net::NodeContext& ctx) override {
    replies.push_back(env.message);
    times.push_back(ctx.Now());
  }
  std::vector<net::Message> replies;
  std::vector<SimTime> times;
};

}  // namespace

int main() {
  ScenarioConfig config;
  config.machines = 1200;
  config.clusters = 3;
  config.clients = 0;
  config.pool_managers = 2;
  config.precreate_pools = false;  // everything materializes on demand
  config.wan = true;               // clients in Purdue, service at UPC
  config.seed = 77;
  SimScenario scenario(config);

  // Register interop translators on... the scenario owns the QMs, so we
  // demonstrate translation by submitting pre-translated queries here
  // and showing the translators' output (the query_manager unit tests
  // exercise the in-pipeline hook).
  const std::string classad =
      "[ Requirements = Cluster == \"c0\"; Owner = \"royo\"; "
      "AccessGroup = \"upc\" ]";
  const std::string rsl = "&(cluster=c1)(owner=\"fortes\")";
  auto from_classad = interop::TranslateClassAd(classad);
  auto from_rsl = interop::TranslateRsl(rsl);
  if (!from_classad.ok() || !from_rsl.ok()) {
    std::printf("translation failed\n");
    return 1;
  }
  std::printf("ClassAd ad translated to native query:\n%s\n",
              from_classad->c_str());
  std::printf("RSL spec translated to native query:\n%s\n",
              from_rsl->c_str());

  auto inbox = std::make_shared<Inbox>();
  scenario.network().AddNode("wan-client", inbox, {"clients", 4});

  int seq = 0;
  auto submit = [&](const std::string& body) {
    net::Message m{net::msg::kQuery};
    m.SetHeader(net::hdr::kReplyTo, "wan-client");
    m.SetHeader(net::hdr::kRequestId, std::to_string(++seq));
    m.body = body;
    const SimTime sent = scenario.kernel().Now();
    const std::size_t had = inbox->replies.size();
    scenario.network().Post("wan-client", "qm0", std::move(m));
    // Step until this query's reply lands; periodic timers keep the event
    // queue non-empty forever, so don't drain it.
    const SimTime deadline = scenario.kernel().Now() + Seconds(120);
    while (inbox->replies.size() == had &&
           scenario.kernel().Now() < deadline && scenario.kernel().Step()) {
    }
    if (inbox->replies.size() == had) {
      std::printf("  query %d -> timeout\n", seq);
      return;
    }
    const auto& reply = inbox->replies.back();
    std::printf("  query %d -> %s", seq, reply.type.c_str());
    if (reply.type == net::msg::kAllocation) {
      std::printf(" machine=%s", reply.Header(net::hdr::kMachine).c_str());
    } else {
      std::printf(" (%s)", reply.Header(net::hdr::kError).c_str());
    }
    std::printf("  [%.1f ms round trip]\n",
                ToMillis(inbox->times.back() - sent));
  };

  std::printf("Submitting across the Purdue -> UPC WAN link:\n");
  submit(*from_classad);  // creates pool cluster,==/c0 on the fly
  submit(*from_rsl);      // creates pool cluster,==/c1
  submit(*from_classad);  // second hit: pool already exists, faster path
  submit("punch.rsrc.cluster = c9\npunch.user.login = royo\n");  // no match

  std::printf(
      "\nNote the ~2x WAN RTT floor on every response, the cheaper second\n"
      "hit on an existing pool, and the clean failure for the\n"
      "unsatisfiable query (its on-demand pool matched zero machines).\n");
  std::printf("pools now registered: %zu\n",
              scenario.directory().PoolNames().size());
  return 0;
}
